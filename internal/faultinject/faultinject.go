// Package faultinject builds deterministic, seed-driven fault plans for
// the durability and fabric layers: process crashes at exact journal
// record boundaries (via journal.CrashFunc) and network faults — dropped
// connections, delays, duplicated requests, truncated response bodies —
// via an http.RoundTripper wrapper.
//
// Everything a plan does is drawn from one internal/rng stream derived
// from its seed, so a schedule is reproducible from the seed alone and a
// failing property-test seed replays exactly. The property suites in
// internal/service and internal/fabric sweep hundreds of seeds and
// assert the recovered (or re-sharded) sweep results are byte-identical
// to an uninterrupted run under every schedule — the fault layer turns
// "we retry" into a tested invariant.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/rng"
)

// CrashPlan is a deterministic process-crash schedule for a journal: it
// kills the log at one seed-chosen record ordinal, optionally tearing
// that record's frame mid-write. A plan whose ordinal lands past the
// run's record count never fires — some seeds complete cleanly, which
// the property suite wants too.
type CrashPlan struct {
	// CrashAt is the 1-based record ordinal the crash fires at (0 =
	// never).
	CrashAt int
	// Torn marks the crash as a torn write; TornFrac picks how much of
	// the frame reaches disk.
	Torn     bool
	TornFrac float64

	mu    sync.Mutex
	count int
	fired bool
}

// NewCrashPlan derives a crash schedule from seed. The crash ordinal is
// uniform over [1, maxRecords]: every boundary between two journal
// records — and, via torn writes, every byte within a record — is
// reachable by some seed.
func NewCrashPlan(seed uint64, maxRecords int) *CrashPlan {
	if maxRecords < 1 {
		maxRecords = 1
	}
	r := rng.New(rng.DeriveSeed(seed, "faultinject/crash"))
	return &CrashPlan{
		CrashAt:  1 + r.Intn(maxRecords),
		Torn:     r.Float64() < 0.5,
		TornFrac: r.Float64(),
	}
}

// Hook returns the journal.CrashFunc implementing the plan.
func (p *CrashPlan) Hook() journal.CrashFunc {
	return func(_ journal.Record, frameLen int) journal.CrashPoint {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.count++
		if p.CrashAt == 0 || p.count != p.CrashAt {
			return journal.CrashPoint{}
		}
		p.fired = true
		if !p.Torn {
			return journal.CrashPoint{Mode: journal.CrashBefore}
		}
		return journal.CrashPoint{
			Mode:      journal.CrashTorn,
			TornBytes: int(p.TornFrac * float64(frameLen)),
		}
	}
}

// Fired reports whether the crash went off (a plan whose ordinal
// exceeded the run's record count completes cleanly).
func (p *CrashPlan) Fired() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// ErrInjected is the transport-level error injected for dropped
// requests; it reaches clients like any connection reset would.
var ErrInjected = errors.New("faultinject: injected connection fault")

// Transport wraps an http.RoundTripper with seed-driven traffic faults.
// Per request it may drop the connection, delay delivery, duplicate the
// request (send it twice, discard the first answer), or truncate the
// response body mid-stream. Drop and truncate — the faults a client
// perceives as worker loss — share a budget (MaxFaults) so a fault-heavy
// seed cannot starve a sweep of workers forever; delay and duplication
// are harmless and unbudgeted.
//
// Decisions are drawn from one seeded stream; under concurrent use the
// interleaving (and so the schedule) depends on goroutine timing, but
// the invariant under test never does: every schedule must yield
// byte-identical sweep results.
type Transport struct {
	// Base performs the real requests; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Fault probabilities in [0, 1].
	DropProb, DelayProb, DupProb, TruncProb float64
	// MaxDelay bounds one injected delay.
	MaxDelay time.Duration
	// MaxFaults budgets drops + truncations (liveness).
	MaxFaults int

	mu     sync.Mutex
	rng    *rng.Stream
	faults int
}

// NewTransport derives a fault-injecting transport from seed with
// defaults tuned for the property suites: faults are frequent enough
// that most seeds exercise the retry paths, bounded enough that every
// sweep still completes.
func NewTransport(seed uint64, base http.RoundTripper) *Transport {
	return &Transport{
		Base:      base,
		DropProb:  0.15,
		DelayProb: 0.25,
		DupProb:   0.10,
		TruncProb: 0.10,
		MaxDelay:  20 * time.Millisecond,
		MaxFaults: 8,
		rng:       rng.New(rng.DeriveSeed(seed, "faultinject/transport")),
	}
}

// Faults reports how many budgeted faults (drops + truncations) have
// been injected.
func (t *Transport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

// decision is one request's drawn fault schedule.
type decision struct {
	drop, dup, trunc bool
	delay            time.Duration
	truncAfter       int
}

func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decision
	budget := t.faults < t.MaxFaults
	if t.rng.Float64() < t.DropProb && budget {
		d.drop = true
		t.faults++
		return d
	}
	if t.rng.Float64() < t.DelayProb && t.MaxDelay > 0 {
		d.delay = time.Duration(t.rng.Float64() * float64(t.MaxDelay))
	}
	if t.rng.Float64() < t.DupProb {
		d.dup = true
	}
	if t.rng.Float64() < t.TruncProb && budget {
		d.trunc = true
		d.truncAfter = t.rng.Intn(256)
		t.faults++
	}
	return d
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	d := t.decide()
	if d.drop {
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	if d.delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.delay):
		}
	}
	if d.dup {
		// Deliver the request twice and keep only the second answer —
		// the duplicate-delivery case retries and idempotent handlers
		// must tolerate. Only replayable bodies can duplicate.
		if dupReq, ok := cloneRequest(req); ok {
			if resp, err := base.RoundTrip(dupReq); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if rewound, ok := cloneRequest(req); ok {
				req = rewound
			}
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !d.trunc {
		return resp, err
	}
	resp.Body = &truncatedBody{rc: resp.Body, remaining: d.truncAfter}
	return resp, nil
}

// cloneRequest re-materialises a request with a fresh body (GetBody), so
// it can be sent again.
func cloneRequest(req *http.Request) (*http.Request, bool) {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.GetBody == nil {
		return clone, req.Body == nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	clone.Body = body
	return clone, true
}

// truncatedBody serves a prefix of the real body, then fails the read —
// the client sees a connection cut mid-response.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w: response truncated", ErrInjected)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = fmt.Errorf("%w: response truncated", ErrInjected)
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
)

func sampleRecords() []TraceRecord {
	t0 := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	return []TraceRecord{
		{ID: 1, Class: "materials-dft", Nodes: 4, RefRuntime: 2 * time.Hour, Submit: t0},
		{ID: 2, Class: "climate-ocean", Nodes: 48, RefRuntime: 12 * time.Hour, Submit: t0.Add(10 * time.Minute)},
		{ID: 3, Class: "materials-dft", Nodes: 8, RefRuntime: 90 * time.Minute, Submit: t0.Add(25 * time.Minute)},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var b strings.Builder
	if err := WriteTrace(&b, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("records = %d", len(back))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestReadTraceSortsBySubmit(t *testing.T) {
	recs := sampleRecords()
	recs[0], recs[2] = recs[2], recs[0] // out of order
	var b strings.Builder
	if err := WriteTrace(&b, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(back); i++ {
		if back[i].Submit.Before(back[i-1].Submit) {
			t.Fatal("trace not sorted by submit time")
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "x,y\n1,2\n",
		"bad id":      "id,class,nodes,ref_runtime_s,submit\nxx,c,4,60,2022-01-01T00:00:00Z\n",
		"bad nodes":   "id,class,nodes,ref_runtime_s,submit\n1,c,0,60,2022-01-01T00:00:00Z\n",
		"bad time":    "id,class,nodes,ref_runtime_s,submit\n1,c,4,60,notatime\n",
		"bad runtime": "id,class,nodes,ref_runtime_s,submit\n1,c,4,-5,2022-01-01T00:00:00Z\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRecorderAndReplayer(t *testing.T) {
	g := newGen(t, 31)
	var rec Recorder
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	now := base
	var original []JobSpec
	for i := 0; i < 50; i++ {
		spec, gap := g.Next()
		spec.Submit = now
		now = now.Add(gap)
		rec.Record(spec)
		original = append(original, spec)
	}
	if len(rec.Records()) != 50 {
		t.Fatalf("recorded = %d", len(rec.Records()))
	}

	rep, err := NewReplayer(rec.Records(), calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Remaining() != 50 {
		t.Fatalf("remaining = %d", rep.Remaining())
	}
	for i := 0; ; i++ {
		spec, ok := rep.Next()
		if !ok {
			if i != 50 {
				t.Fatalf("replayed %d jobs", i)
			}
			break
		}
		o := original[i]
		if spec.ID != o.ID || spec.Class != o.Class || spec.Nodes != o.Nodes ||
			spec.RefRuntime != o.RefRuntime || !spec.Submit.Equal(o.Submit) {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, spec, o)
		}
		if spec.App == nil || spec.App.Name != o.Class {
			t.Fatalf("job %d app not resolved: %+v", i, spec.App)
		}
	}
}

func TestReplayerUnknownClass(t *testing.T) {
	recs := []TraceRecord{{ID: 1, Class: "no-such-class", Nodes: 1,
		RefRuntime: time.Hour, Submit: time.Now()}}
	if _, err := NewReplayer(recs, apps.FleetMix()); err == nil {
		t.Fatal("unknown class accepted")
	}
}

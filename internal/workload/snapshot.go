package workload

// GeneratorSnapshot is a generator's mutable state at a checkpoint: the
// arrival-stream RNG position and the next job ID. The class picker is a
// pure function of the configuration and is rebuilt identically by the
// fork's own construction. The calibrated arrival rate is one too, but
// recomputing it costs a 20,000-draw Monte-Carlo estimate per fork, so
// the snapshot carries the parent's value (Rate) for the fork to install
// directly — bit-identical by construction, since the parent derived it
// from the same configuration and derived seed.
type GeneratorSnapshot struct {
	Rng    [4]uint64
	NextID int
	Rate   float64
}

// Snapshot captures the generator's mutable state.
func (g *Generator) Snapshot() GeneratorSnapshot {
	return GeneratorSnapshot{Rng: g.stream.State(), NextID: g.nextID, Rate: g.cfg.ArrivalRatePerHour}
}

// Restore overwrites the generator's mutable state from a snapshot.
func (g *Generator) Restore(s GeneratorSnapshot) {
	g.stream.SetState(s.Rng)
	g.nextID = s.NextID
	if s.Rate > 0 {
		g.cfg.ArrivalRatePerHour = s.Rate
	}
}

// Restore replaces the recorder's contents with its own copy of records,
// so a forked run's trace continues from the checkpoint without aliasing
// the parent's backing array.
func (r *Recorder) Restore(records []TraceRecord) {
	r.records = append([]TraceRecord(nil), records...)
}

// Package workload generates the synthetic ARCHER2 job stream: Poisson
// arrivals of jobs drawn from the research-area fleet classes, with
// per-class lognormal node-count and runtime distributions, at a rate
// calibrated so the facility runs saturated (>90% utilisation) exactly as
// the paper reports for every measurement window.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/rng"
)

// JobSpec is one generated job before scheduling.
type JobSpec struct {
	ID    int
	Class string
	App   *apps.App
	// Nodes requested.
	Nodes int
	// RefRuntime is the runtime at the reference operating point (boost +
	// Power Determinism); the scheduler stretches it for the operating
	// point actually in force.
	RefRuntime time.Duration
	// Submit is the submission time.
	Submit time.Time
	// Priority is the job's scheduling priority class (higher runs
	// first); zero is the default class. The scheduler orders its pending
	// queue by priority (optionally aged — see sched.Config.AgingHours)
	// and may preempt lower-priority running work for it.
	Priority int
	// Partition is the facility partition index the job targets (0 = the
	// primary CPU partition). Assigned by a pure hash of the job ID, like
	// Priority, so a heterogeneous run's job stream stays byte-identical
	// to the homogeneous one apart from the routing itself.
	Partition int
}

// NodeHours returns the job's reference node-hour cost.
func (j JobSpec) NodeHours() float64 {
	return float64(j.Nodes) * j.RefRuntime.Hours()
}

// PriorityClass is one level of a priority mix: jobs are assigned Level
// with probability Share (shares are normalised over the mix).
type PriorityClass struct {
	Level int
	Share float64
}

// PartitionShare routes a share of the job stream to facility partition
// Index. Shares are normalised over the mix, exactly as for priorities.
type PartitionShare struct {
	Index int
	Share float64
	// MaxJobNodes, when positive, caps the node count of jobs routed to
	// this partition (a small accelerator partition cannot absorb jobs
	// sized for the full CPU machine). The cap applies after the shape
	// draw, consuming nothing extra from the arrival stream.
	MaxJobNodes int
}

// Config parameterises a generator.
type Config struct {
	// Classes define the per-class job-shape distributions.
	Classes []apps.FleetClass
	// Mix supplies the (calibrated) App model for each class, in the same
	// order as Classes.
	Mix []apps.WeightedApp
	// MaxJobNodes caps the node count of a single job.
	MaxJobNodes int
	// MinRuntime / MaxRuntime clamp job runtimes.
	MinRuntime, MaxRuntime time.Duration
	// ArrivalRatePerHour is the Poisson job arrival rate.
	ArrivalRatePerHour float64
	// Priorities, when non-empty, assigns each job a scheduling priority
	// drawn from these classes. The draw is a pure hash of the job ID
	// under PrioritySeed — it consumes nothing from the generator's
	// arrival stream, so enabling priorities leaves every job's shape,
	// class and submit time bit-identical to a run without them.
	Priorities []PriorityClass
	// PrioritySeed seeds the per-job priority hash.
	PrioritySeed uint64
	// Partitions, when non-empty, routes each job to a facility partition
	// drawn from these shares. Like Priorities, the draw is a pure hash
	// of the job ID under PartitionSeed — it consumes nothing from the
	// arrival stream, so a heterogeneous run generates the same jobs as
	// a homogeneous one.
	Partitions []PartitionShare
	// PartitionSeed seeds the per-job partition hash.
	PartitionSeed uint64
}

// DefaultConfig returns the ARCHER2-like configuration over the given
// calibrated mix. The arrival rate is left zero; use CalibrateArrivalRate.
func DefaultConfig(mix []apps.WeightedApp) (Config, error) {
	classes := apps.FleetClasses()
	if len(mix) != len(classes) {
		return Config{}, fmt.Errorf("workload: mix size %d != classes %d", len(mix), len(classes))
	}
	return Config{
		Classes:     classes,
		Mix:         mix,
		MaxJobNodes: 1024,
		MinRuntime:  15 * time.Minute,
		MaxRuntime:  48 * time.Hour,
	}, nil
}

// Generator draws jobs deterministically from a split RNG stream.
type Generator struct {
	cfg    Config
	pick   *rng.Categorical
	stream *rng.Stream
	nextID int
}

// NewGenerator validates cfg and builds a generator using r (retained).
func NewGenerator(cfg Config, r *rng.Stream) (*Generator, error) {
	if len(cfg.Classes) == 0 || len(cfg.Classes) != len(cfg.Mix) {
		return nil, fmt.Errorf("workload: classes/mix mismatch (%d vs %d)", len(cfg.Classes), len(cfg.Mix))
	}
	if cfg.MaxJobNodes <= 0 {
		return nil, fmt.Errorf("workload: MaxJobNodes must be positive")
	}
	if cfg.MinRuntime <= 0 || cfg.MaxRuntime < cfg.MinRuntime {
		return nil, fmt.Errorf("workload: invalid runtime clamps [%v, %v]", cfg.MinRuntime, cfg.MaxRuntime)
	}
	if len(cfg.Priorities) > 0 {
		total := 0.0
		for _, pc := range cfg.Priorities {
			if pc.Share < 0 {
				return nil, fmt.Errorf("workload: negative priority share %v", pc.Share)
			}
			total += pc.Share
		}
		if total <= 0 {
			return nil, fmt.Errorf("workload: priority shares sum to zero")
		}
	}
	if len(cfg.Partitions) > 0 {
		total := 0.0
		for _, ps := range cfg.Partitions {
			if ps.Share < 0 {
				return nil, fmt.Errorf("workload: negative partition share %v", ps.Share)
			}
			if ps.Index < 0 {
				return nil, fmt.Errorf("workload: negative partition index %d", ps.Index)
			}
			total += ps.Share
		}
		if total <= 0 {
			return nil, fmt.Errorf("workload: partition shares sum to zero")
		}
	}
	weights := make([]float64, len(cfg.Classes))
	for i, c := range cfg.Classes {
		weights[i] = c.Share
	}
	return &Generator{cfg: cfg, pick: rng.NewCategorical(weights), stream: r}, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// drawShape samples (nodes, runtime) for class i.
func (g *Generator) drawShape(i int, r *rng.Stream) (int, time.Duration) {
	cl := g.cfg.Classes[i]
	nodes := int(math.Round(r.LogNormal(math.Log(cl.NodesMedian), cl.NodesSigma)))
	if nodes < 1 {
		nodes = 1
	}
	if nodes > g.cfg.MaxJobNodes {
		nodes = g.cfg.MaxJobNodes
	}
	hours := r.LogNormal(math.Log(cl.RuntimeMedian.Hours()), cl.RuntimeSigma)
	rt := time.Duration(hours * float64(time.Hour))
	if rt < g.cfg.MinRuntime {
		rt = g.cfg.MinRuntime
	}
	if rt > g.cfg.MaxRuntime {
		rt = g.cfg.MaxRuntime
	}
	return nodes, rt
}

// Next generates the next job: the spec and the exponential interarrival
// gap to the following submission. Submit is filled in by the caller (the
// simulation clock owns time).
func (g *Generator) Next() (JobSpec, time.Duration) {
	if g.cfg.ArrivalRatePerHour <= 0 {
		panic("workload: arrival rate not set; call CalibrateArrivalRate")
	}
	i := g.pick.Draw(g.stream)
	nodes, rt := g.drawShape(i, g.stream)
	g.nextID++
	spec := JobSpec{
		ID:         g.nextID,
		Class:      g.cfg.Classes[i].Name,
		App:        g.cfg.Mix[i].App,
		Nodes:      nodes,
		RefRuntime: rt,
		Priority:   g.priorityFor(g.nextID),
	}
	if len(g.cfg.Partitions) > 0 {
		ps := g.partitionFor(g.nextID)
		spec.Partition = ps.Index
		if ps.MaxJobNodes > 0 && spec.Nodes > ps.MaxJobNodes {
			spec.Nodes = ps.MaxJobNodes
		}
	}
	gapHours := g.stream.Exp(g.cfg.ArrivalRatePerHour)
	return spec, time.Duration(gapHours * float64(time.Hour))
}

// partitionFor routes a job to a partition share by hashing its ID, the
// same pure-function-of-(seed, id) idiom as priorityFor: no arrival-
// stream draws, so routing changes never perturb job shapes.
func (g *Generator) partitionFor(id int) PartitionShare {
	total := 0.0
	for _, ps := range g.cfg.Partitions {
		total += ps.Share
	}
	h := rng.DeriveSeed(g.cfg.PartitionSeed, fmt.Sprintf("partition/%d", id))
	u := float64(h>>11) / (1 << 53) * total
	cum := 0.0
	for _, ps := range g.cfg.Partitions {
		cum += ps.Share
		if u < cum {
			return ps
		}
	}
	return g.cfg.Partitions[len(g.cfg.Partitions)-1]
}

// priorityFor assigns a job's priority level by hashing its ID against
// the priority mix. The hash never touches the generator's arrival
// stream, so the assignment is a pure function of (seed, id) and two
// runs differing only in Priorities produce identical job streams.
func (g *Generator) priorityFor(id int) int {
	if len(g.cfg.Priorities) == 0 {
		return 0
	}
	total := 0.0
	for _, pc := range g.cfg.Priorities {
		total += pc.Share
	}
	h := rng.DeriveSeed(g.cfg.PrioritySeed, fmt.Sprintf("priority/%d", id))
	u := float64(h>>11) / (1 << 53) * total
	cum := 0.0
	for _, pc := range g.cfg.Priorities {
		cum += pc.Share
		if u < cum {
			return pc.Level
		}
	}
	return g.cfg.Priorities[len(g.cfg.Priorities)-1].Level
}

// MeanJobNodeHours estimates the expected node-hours per job by drawing n
// samples from a dedicated stream (leaving the generator's own stream
// untouched).
func (g *Generator) MeanJobNodeHours(n int) float64 {
	est := g.stream.Split("calibration-estimate")
	total := 0.0
	for k := 0; k < n; k++ {
		i := g.pick.Draw(est)
		nodes, rt := g.drawShape(i, est)
		total += float64(nodes) * rt.Hours()
	}
	return total / float64(n)
}

// CalibrateArrivalRate sets the Poisson arrival rate so that offered load
// equals `overSubscription` times the capacity of `nodes` compute nodes
// (overSubscription slightly above 1 keeps the queue saturated, which is
// how ARCHER2 sustains >90% utilisation).
func (g *Generator) CalibrateArrivalRate(nodes int, overSubscription float64) error {
	if nodes <= 0 || overSubscription <= 0 {
		return fmt.Errorf("workload: invalid calibration (nodes=%d, over=%v)", nodes, overSubscription)
	}
	mean := g.MeanJobNodeHours(20000)
	if mean <= 0 {
		return fmt.Errorf("workload: degenerate job size distribution")
	}
	g.cfg.ArrivalRatePerHour = float64(nodes) * overSubscription / mean
	return nil
}

// SetArrivalRate installs an already calibrated arrival rate, skipping
// the Monte-Carlo estimate. The rate is a pure function of the workload
// configuration and derived seed, so a checkpoint fork reuses the
// parent's value instead of re-estimating it on every branch.
func (g *Generator) SetArrivalRate(ratePerHour float64) error {
	if ratePerHour <= 0 {
		return fmt.Errorf("workload: invalid arrival rate %v", ratePerHour)
	}
	g.cfg.ArrivalRatePerHour = ratePerHour
	return nil
}

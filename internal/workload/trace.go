package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
)

// Trace export/replay: generated job streams can be saved as CSV and
// replayed exactly, so an experiment's workload can be pinned, shared and
// re-run against different operating policies — the twin's equivalent of
// replaying a production scheduler log.

// TraceRecord is one job in a serialised trace.
type TraceRecord struct {
	ID         int
	Class      string
	Nodes      int
	RefRuntime time.Duration
	Submit     time.Time
}

// WriteTrace serialises records as CSV with a header.
func WriteTrace(w io.Writer, records []TraceRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "class", "nodes", "ref_runtime_s", "submit"}); err != nil {
		return err
	}
	for _, r := range records {
		err := cw.Write([]string{
			strconv.Itoa(r.ID),
			r.Class,
			strconv.Itoa(r.Nodes),
			strconv.FormatFloat(r.RefRuntime.Seconds(), 'f', 3, 64),
			r.Submit.UTC().Format(time.RFC3339Nano),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if len(rows[0]) != 5 || rows[0][0] != "id" {
		return nil, fmt.Errorf("workload: unrecognised trace header %v", rows[0])
	}
	out := make([]TraceRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad id: %w", i+1, err)
		}
		nodes, err := strconv.Atoi(row[2])
		if err != nil || nodes <= 0 {
			return nil, fmt.Errorf("workload: trace row %d: bad node count %q", i+1, row[2])
		}
		secs, err := strconv.ParseFloat(row[3], 64)
		if err != nil || secs <= 0 {
			return nil, fmt.Errorf("workload: trace row %d: bad runtime %q", i+1, row[3])
		}
		submit, err := time.Parse(time.RFC3339Nano, row[4])
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad submit time: %w", i+1, err)
		}
		out = append(out, TraceRecord{
			ID:         id,
			Class:      row[1],
			Nodes:      nodes,
			RefRuntime: time.Duration(secs * float64(time.Second)),
			Submit:     submit,
		})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Submit.Before(out[b].Submit) })
	return out, nil
}

// Recorder collects generated jobs into a trace.
type Recorder struct {
	records []TraceRecord
}

// Record appends a submitted job spec.
func (r *Recorder) Record(spec JobSpec) {
	r.records = append(r.records, TraceRecord{
		ID:         spec.ID,
		Class:      spec.Class,
		Nodes:      spec.Nodes,
		RefRuntime: spec.RefRuntime,
		Submit:     spec.Submit,
	})
}

// Records returns the collected trace.
func (r *Recorder) Records() []TraceRecord { return r.records }

// Replayer turns a trace back into JobSpecs, resolving class names against
// an application mix.
type Replayer struct {
	records []TraceRecord
	byClass map[string]*apps.App
	next    int
}

// NewReplayer builds a replayer. Every class named in the trace must
// resolve against the mix.
func NewReplayer(records []TraceRecord, mix []apps.WeightedApp) (*Replayer, error) {
	byClass := make(map[string]*apps.App, len(mix))
	for _, wa := range mix {
		byClass[wa.App.Name] = wa.App
	}
	for _, r := range records {
		if byClass[r.Class] == nil {
			return nil, fmt.Errorf("workload: trace class %q not in mix", r.Class)
		}
	}
	return &Replayer{records: records, byClass: byClass}, nil
}

// Remaining returns how many jobs are left to replay.
func (r *Replayer) Remaining() int { return len(r.records) - r.next }

// Next returns the next job spec, or ok=false when exhausted.
func (r *Replayer) Next() (JobSpec, bool) {
	if r.next >= len(r.records) {
		return JobSpec{}, false
	}
	rec := r.records[r.next]
	r.next++
	return JobSpec{
		ID:         rec.ID,
		Class:      rec.Class,
		App:        r.byClass[rec.Class],
		Nodes:      rec.Nodes,
		RefRuntime: rec.RefRuntime,
		Submit:     rec.Submit,
	}, true
}

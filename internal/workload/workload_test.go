package workload

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/units"
)

func calibratedMix(t *testing.T) []apps.WeightedApp {
	t.Helper()
	s := cpu.EPYC7742()
	mix, _, err := apps.CalibrateMixToBusyPower(s, apps.FleetMix(),
		s.DefaultSetting(), cpu.PowerDeterminism, units.Watts(540))
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

func newGen(t *testing.T, seed uint64) *Generator {
	t.Helper()
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(cfg, rng.New(seed).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CalibrateArrivalRate(5860, 1.1); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.MaxJobNodes = 0
	if _, err := NewGenerator(bad, rng.New(1)); err == nil {
		t.Error("zero MaxJobNodes accepted")
	}
	bad = cfg
	bad.Mix = bad.Mix[:2]
	if _, err := NewGenerator(bad, rng.New(1)); err == nil {
		t.Error("mismatched mix accepted")
	}
	bad = cfg
	bad.MinRuntime = 0
	if _, err := NewGenerator(bad, rng.New(1)); err == nil {
		t.Error("zero MinRuntime accepted")
	}
	if _, err := DefaultConfig(calibratedMix(t)[:3]); err == nil {
		t.Error("short mix accepted by DefaultConfig")
	}
}

func TestJobShapesInBounds(t *testing.T) {
	g := newGen(t, 7)
	for i := 0; i < 5000; i++ {
		spec, gap := g.Next()
		if spec.Nodes < 1 || spec.Nodes > g.Config().MaxJobNodes {
			t.Fatalf("job %d: nodes = %d", spec.ID, spec.Nodes)
		}
		if spec.RefRuntime < g.Config().MinRuntime || spec.RefRuntime > g.Config().MaxRuntime {
			t.Fatalf("job %d: runtime = %v", spec.ID, spec.RefRuntime)
		}
		if gap < 0 {
			t.Fatalf("negative interarrival %v", gap)
		}
		if spec.App == nil || spec.Class == "" {
			t.Fatalf("job %d: missing app/class", spec.ID)
		}
	}
}

func TestJobIDsMonotone(t *testing.T) {
	g := newGen(t, 9)
	prev := 0
	for i := 0; i < 100; i++ {
		spec, _ := g.Next()
		if spec.ID <= prev {
			t.Fatalf("non-monotone job IDs: %d after %d", spec.ID, prev)
		}
		prev = spec.ID
	}
}

func TestClassSharesRespected(t *testing.T) {
	g := newGen(t, 11)
	counts := map[string]int{}
	n := 30000
	for i := 0; i < n; i++ {
		spec, _ := g.Next()
		counts[spec.Class]++
	}
	for i, cl := range g.Config().Classes {
		frac := float64(counts[cl.Name]) / float64(n)
		if math.Abs(frac-cl.Share) > 0.02 {
			t.Errorf("class %d %s: drawn %.3f, share %.3f", i, cl.Name, frac, cl.Share)
		}
	}
}

func TestCalibratedRateSaturates(t *testing.T) {
	g := newGen(t, 13)
	// Offered node-hours per hour must be ~1.1x the 5860-node capacity.
	mean := g.MeanJobNodeHours(50000)
	offered := g.Config().ArrivalRatePerHour * mean
	want := 5860 * 1.1
	if math.Abs(offered-want)/want > 0.05 {
		t.Fatalf("offered load = %v node-hours/h, want ~%v", offered, want)
	}
}

func TestArrivalGapsExponential(t *testing.T) {
	g := newGen(t, 17)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		_, gap := g.Next()
		sum += gap.Hours()
	}
	meanGap := sum / float64(n)
	wantGap := 1 / g.Config().ArrivalRatePerHour
	if math.Abs(meanGap-wantGap)/wantGap > 0.05 {
		t.Fatalf("mean interarrival = %v h, want %v h", meanGap, wantGap)
	}
}

func TestDeterministicStream(t *testing.T) {
	a, b := newGen(t, 21), newGen(t, 21)
	for i := 0; i < 200; i++ {
		sa, ga := a.Next()
		sb, gb := b.Next()
		// App pointers come from separately-built mixes; compare by value.
		if sa.ID != sb.ID || sa.Class != sb.Class || sa.Nodes != sb.Nodes ||
			sa.RefRuntime != sb.RefRuntime || sa.App.Name != sb.App.Name || ga != gb {
			t.Fatalf("generators diverge at job %d", i)
		}
	}
}

func TestNextPanicsWithoutRate(t *testing.T) {
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next without rate did not panic")
		}
	}()
	g.Next()
}

func TestNodeHours(t *testing.T) {
	j := JobSpec{Nodes: 4, RefRuntime: 90 * time.Minute}
	if got := j.NodeHours(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("node hours = %v, want 6", got)
	}
}

func TestCalibrateArrivalRateErrors(t *testing.T) {
	g := newGen(t, 23)
	if err := g.CalibrateArrivalRate(0, 1.1); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := g.CalibrateArrivalRate(100, 0); err == nil {
		t.Error("zero oversubscription accepted")
	}
}

// genWithPriorities builds a calibrated generator with the given priority
// mix and hash seed on top of the default config.
func genWithPriorities(t *testing.T, seed uint64, pcs []PriorityClass, prioSeed uint64) *Generator {
	t.Helper()
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Priorities = pcs
	cfg.PrioritySeed = prioSeed
	g, err := NewGenerator(cfg, rng.New(seed).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CalibrateArrivalRate(5860, 1.1); err != nil {
		t.Fatal(err)
	}
	return g
}

var testPriorityMix = []PriorityClass{{Level: 0, Share: 0.6}, {Level: 2, Share: 0.3}, {Level: 5, Share: 0.1}}

// Adding priority classes must not perturb the arrival stream: the hash
// assignment is a pure function of (PrioritySeed, job ID), so a run with
// priorities produces the exact job sequence of a run without — same
// IDs, shapes, classes and interarrival gaps, only Priority differs.
func TestPriorityAssignmentStreamIndependent(t *testing.T) {
	plain := genWithPriorities(t, 31, nil, 77)
	prio := genWithPriorities(t, 31, testPriorityMix, 77)
	for i := 0; i < 5000; i++ {
		sa, ga := plain.Next()
		sb, gb := prio.Next()
		if sa.ID != sb.ID || sa.Class != sb.Class || sa.Nodes != sb.Nodes ||
			sa.RefRuntime != sb.RefRuntime || ga != gb {
			t.Fatalf("priority mix perturbed the job stream at job %d", i)
		}
		if sa.Priority != 0 {
			t.Fatalf("job %d: generator without priorities assigned level %d", sa.ID, sa.Priority)
		}
	}
}

// Priority levels are drawn from the declared classes with the declared
// shares, the assignment depends only on (PrioritySeed, ID) — not on the
// generator's arrival seed — and changing PrioritySeed reshuffles it.
func TestPriorityLevelSharesAndSeed(t *testing.T) {
	g := genWithPriorities(t, 31, testPriorityMix, 77)
	sameHash := genWithPriorities(t, 99, testPriorityMix, 77)  // different arrival seed
	otherHash := genWithPriorities(t, 31, testPriorityMix, 78) // different hash seed
	levels := map[int]bool{}
	for _, pc := range testPriorityMix {
		levels[pc.Level] = true
	}
	counts := map[int]int{}
	n, moved := 30000, 0
	for i := 0; i < n; i++ {
		sa, _ := g.Next()
		sb, _ := sameHash.Next()
		sc, _ := otherHash.Next()
		if !levels[sa.Priority] {
			t.Fatalf("job %d: priority %d not in the declared mix", sa.ID, sa.Priority)
		}
		if sa.Priority != sb.Priority {
			t.Fatalf("job %d: priority depends on the arrival seed (%d vs %d)", sa.ID, sa.Priority, sb.Priority)
		}
		if sa.Priority != sc.Priority {
			moved++
		}
		counts[sa.Priority]++
	}
	for _, pc := range testPriorityMix {
		frac := float64(counts[pc.Level]) / float64(n)
		if math.Abs(frac-pc.Share) > 0.02 {
			t.Errorf("level %d: drawn %.3f, share %.3f", pc.Level, frac, pc.Share)
		}
	}
	if moved == 0 {
		t.Error("changing PrioritySeed left every assignment unchanged")
	}
}

// Invalid priority mixes are rejected at construction.
func TestPriorityValidation(t *testing.T) {
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Priorities = []PriorityClass{{Level: 0, Share: -0.5}}
	if _, err := NewGenerator(bad, rng.New(1)); err == nil {
		t.Error("negative priority share accepted")
	}
	bad = cfg
	bad.Priorities = []PriorityClass{{Level: 0, Share: 0}, {Level: 2, Share: 0}}
	if _, err := NewGenerator(bad, rng.New(1)); err == nil {
		t.Error("zero-sum priority shares accepted")
	}
}

// genWithPartitions builds a calibrated generator with the given partition
// shares and hash seed on top of the default config.
func genWithPartitions(t *testing.T, seed uint64, pss []PartitionShare, partSeed uint64) *Generator {
	t.Helper()
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Partitions = pss
	cfg.PartitionSeed = partSeed
	g, err := NewGenerator(cfg, rng.New(seed).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CalibrateArrivalRate(5860, 1.1); err != nil {
		t.Fatal(err)
	}
	return g
}

var testPartitionMix = []PartitionShare{
	{Index: 0, Share: 0.9},
	{Index: 1, Share: 0.1, MaxJobNodes: 64},
}

// Routing jobs to partitions must not perturb the arrival stream: like
// priorities, the assignment is a pure hash of (PartitionSeed, job ID),
// so a heterogeneous run generates the exact job sequence of the
// homogeneous one — only Partition (and the partition node cap) differ.
func TestPartitionAssignmentStreamIndependent(t *testing.T) {
	plain := genWithPartitions(t, 31, nil, 55)
	part := genWithPartitions(t, 31, testPartitionMix, 55)
	routed := 0
	for i := 0; i < 5000; i++ {
		sa, ga := plain.Next()
		sb, gb := part.Next()
		if sa.ID != sb.ID || sa.Class != sb.Class || sa.RefRuntime != sb.RefRuntime || ga != gb {
			t.Fatalf("partition mix perturbed the job stream at job %d", i)
		}
		if sa.Partition != 0 {
			t.Fatalf("job %d: generator without partitions routed to %d", sa.ID, sa.Partition)
		}
		if sb.Partition == 1 {
			routed++
			if sb.Nodes > 64 {
				t.Fatalf("job %d: partition cap ignored (%d nodes)", sb.ID, sb.Nodes)
			}
		} else if sa.Nodes != sb.Nodes {
			t.Fatalf("job %d: primary-partition job resized (%d vs %d)", sa.ID, sa.Nodes, sb.Nodes)
		}
	}
	if routed == 0 {
		t.Error("no jobs routed to the extra partition")
	}
}

// Partition routing depends only on (PartitionSeed, ID) — not on the
// arrival seed — and follows the declared shares.
func TestPartitionSharesAndSeed(t *testing.T) {
	g := genWithPartitions(t, 31, testPartitionMix, 55)
	sameHash := genWithPartitions(t, 99, testPartitionMix, 55)
	otherHash := genWithPartitions(t, 31, testPartitionMix, 56)
	counts := map[int]int{}
	n, moved := 30000, 0
	for i := 0; i < n; i++ {
		sa, _ := g.Next()
		sb, _ := sameHash.Next()
		sc, _ := otherHash.Next()
		if sa.Partition != sb.Partition {
			t.Fatalf("job %d: partition depends on the arrival seed", sa.ID)
		}
		if sa.Partition != sc.Partition {
			moved++
		}
		counts[sa.Partition]++
	}
	for _, ps := range testPartitionMix {
		frac := float64(counts[ps.Index]) / float64(n)
		if math.Abs(frac-ps.Share) > 0.02 {
			t.Errorf("partition %d: drawn %.3f, share %.3f", ps.Index, frac, ps.Share)
		}
	}
	if moved == 0 {
		t.Error("changing PartitionSeed left every assignment unchanged")
	}
}

// Invalid partition mixes are rejected at construction.
func TestPartitionValidation(t *testing.T) {
	cfg, err := DefaultConfig(calibratedMix(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]PartitionShare{
		{{Index: 0, Share: -0.5}},
		{{Index: -1, Share: 1}},
		{{Index: 0, Share: 0}, {Index: 1, Share: 0}},
	} {
		cfgBad := cfg
		cfgBad.Partitions = bad
		if _, err := NewGenerator(cfgBad, rng.New(1)); err == nil {
			t.Errorf("invalid partition mix %v accepted", bad)
		}
	}
}

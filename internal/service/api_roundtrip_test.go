package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// These tests drive the service handler exclusively through api.Client —
// the same path the fabric coordinator and cmd/sweep -server use — so
// the typed client and the handler are proven against each other, not
// each against hand-rolled JSON.

// TestAPIRoundTrip exercises the full sweep lifecycle through the
// client: submit-and-wait, status, list, results, and the digest
// equality against a direct Runner.Run.
func TestAPIRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, Config{Runner: &scenario.Runner{Workers: 1}})
	client := api.NewClient(srv.URL)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	p, err := client.SubmitSweepWait(ctx, smallSpec())
	if err != nil {
		t.Fatalf("SubmitSweepWait: %v", err)
	}
	if len(p.Results) != 1 || p.Results[0].SimDigest == "" {
		t.Fatalf("payload results = %+v, want 1 result with a digest", p.Results)
	}
	direct, err := (&scenario.Runner{Workers: 1}).Run(ctx, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if p.Results[0].SimDigest != direct.Results[0].SimDigest {
		t.Errorf("served digest %s != direct digest %s", p.Results[0].SimDigest, direct.Results[0].SimDigest)
	}

	st, err := client.Sweep(ctx, p.ID)
	if err != nil {
		t.Fatalf("Sweep(%s): %v", p.ID, err)
	}
	if st.State != StateDone || st.SpecKey != SpecKey(smallSpec()) {
		t.Errorf("status = %+v, want done with the canonical spec key", st)
	}

	list, err := client.Sweeps(ctx, api.ListOptions{})
	if err != nil {
		t.Fatalf("Sweeps: %v", err)
	}
	if list.Total != 1 || len(list.Sweeps) != 1 || list.Sweeps[0].ID != p.ID {
		t.Errorf("list = %+v, want exactly the completed sweep", list)
	}

	again, err := client.Results(ctx, p.ID)
	if err != nil {
		t.Fatalf("Results(%s): %v", p.ID, err)
	}
	if again.Results[0].SimDigest != p.Results[0].SimDigest {
		t.Error("results endpoint and wait payload disagree on the digest")
	}

	// Unknown sweep: typed not_found.
	_, err = client.Sweep(ctx, "sweep-999")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound {
		t.Errorf("Sweep(sweep-999) err = %v, want not_found", err)
	}
}

// TestAPIResultsBeforeDone: results on a running sweep answer 409 with
// the sweep_not_done envelope embedding the live status — the client
// surfaces the code, and raw inspection confirms the embedded status.
func TestAPIResultsBeforeDone(t *testing.T) {
	started := make(chan context.Context, 1)
	_, srv := newTestServer(t, Config{Run: blockingRun(started)})
	client := api.NewClient(srv.URL)
	ctx := context.Background()

	st, joined, err := client.SubmitSweep(ctx, smallSpec())
	if err != nil || joined {
		t.Fatalf("SubmitSweep = (%+v, %v, %v), want fresh submission", st, joined, err)
	}
	<-started

	_, err = client.Results(ctx, st.ID)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("Results on running sweep: err = %v (%T), want *api.Error", err, err)
	}
	if apiErr.Code != api.ErrSweepNotDone || apiErr.HTTPStatus != http.StatusConflict {
		t.Errorf("error = %+v, want sweep_not_done with HTTP 409", apiErr)
	}

	// The envelope embeds the live status (the client drops it; check
	// the wire directly).
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := decodeJSON(resp, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != api.ErrSweepNotDone {
		t.Fatalf("envelope error = %+v, want sweep_not_done", env.Error)
	}
	if env.Status == nil || env.Status.ID != st.ID || env.Status.State != StateRunning {
		t.Errorf("embedded status = %+v, want the running sweep", env.Status)
	}

	// Cancelling surfaces sweep_canceled through both wait-style reads.
	if _, err := client.CancelSweep(ctx, st.ID); err != nil {
		t.Fatalf("CancelSweep: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = client.Results(ctx, st.ID)
		if errors.As(err, &apiErr) && apiErr.Code == api.ErrSweepCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("results after cancel: err = %v, want sweep_canceled", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if apiErr.HTTPStatus != http.StatusConflict {
		t.Errorf("sweep_canceled travelled with HTTP %d, want 409", apiErr.HTTPStatus)
	}
}

// TestAPIListLimitAndStateFilter pins the documented list defaults: the
// page is bounded at api.DefaultListLimit when no ?limit= is given,
// Total counts matches before the bound, and ?state= filters.
func TestAPIListLimitAndStateFilter(t *testing.T) {
	// An immediate RunFunc so submissions finish instantly; MaxFinished
	// keeps every sweep queryable.
	instant := func(ctx context.Context, spec scenario.Spec, progress func(int, int)) (*scenario.SweepResults, error) {
		return &scenario.SweepResults{Spec: spec, Simulations: 1, Workers: 1}, nil
	}
	svc, srv := newTestServer(t, Config{Run: instant, MaxConcurrent: 8, MaxFinished: api.DefaultListLimit + 50})
	client := api.NewClient(srv.URL)
	ctx := context.Background()

	total := api.DefaultListLimit + 10
	for i := 0; i < total; i++ {
		spec := smallSpec()
		spec.Seed = uint64(i + 1) // distinct canonical specs: no dedup joins
		sw, _, err := svc.Submit(ctx, spec, false)
		if err != nil {
			t.Fatal(err)
		}
		<-sw.Done()
	}

	list, err := client.Sweeps(ctx, api.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != api.DefaultListLimit {
		t.Errorf("default page size = %d, want api.DefaultListLimit = %d", len(list.Sweeps), api.DefaultListLimit)
	}
	if list.Total != total {
		t.Errorf("Total = %d, want %d (all matches, pre-limit)", list.Total, total)
	}

	small, err := client.Sweeps(ctx, api.ListOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Sweeps) != 3 || small.Total != total {
		t.Errorf("limit=3 page = (%d sweeps, total %d), want (3, %d)", len(small.Sweeps), small.Total, total)
	}

	done, err := client.Sweeps(ctx, api.ListOptions{States: []State{StateDone}, Limit: total})
	if err != nil {
		t.Fatal(err)
	}
	if done.Total != total || len(done.Sweeps) != total {
		t.Errorf("state=done = (%d, %d), want every sweep", len(done.Sweeps), done.Total)
	}
	none, err := client.Sweeps(ctx, api.ListOptions{States: []State{StateFailed}})
	if err != nil {
		t.Fatal(err)
	}
	if none.Total != 0 || len(none.Sweeps) != 0 {
		t.Errorf("state=failed = (%d, %d), want empty", len(none.Sweeps), none.Total)
	}

	// Invalid parameters answer typed bad_request.
	for _, q := range []string{"?limit=0", "?limit=-1", "?limit=x", "?state=bogus"} {
		resp, err := http.Get(srv.URL + "/v1/sweeps" + q)
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		if err := decodeJSON(resp, &env); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest || env.Error == nil || env.Error.Code != api.ErrBadRequest {
			t.Errorf("GET /v1/sweeps%s = %d %+v, want 400 bad_request", q, resp.StatusCode, env.Error)
		}
	}
}

// TestAPIMethodNotAllowed: every route answers wrong methods with the
// 405 envelope and a populated Allow header.
func TestAPIMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, Config{Runner: &scenario.Runner{Workers: 1}})
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/healthz", "GET"},
		{http.MethodPost, "/statz", "GET"},
		{http.MethodDelete, "/v1/sweeps", "GET, POST"},
		{http.MethodGet, "/v1/shards", "POST"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		if err := decodeJSON(resp, &env); err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		if env.Error == nil || env.Error.Code != api.ErrMethodNotAllowed {
			t.Errorf("%s %s envelope = %+v, want method_not_allowed", tc.method, tc.path, env.Error)
		}
	}
}

// TestAPIShardEndpoint: a shard request through the client returns the
// requested scenarios with digests matching a direct run, malformed
// requests answer bad_request, and the worker counts it in statz.
func TestAPIShardEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Runner: &scenario.Runner{Workers: 1}})
	client := api.NewClient(srv.URL)
	ctx := context.Background()

	spec := smallSpec()
	spec.Axes.Frequency = []string{"stock", "capped"}
	resp, err := client.RunShard(ctx, api.ShardRequest{
		SweepKey:  api.SpecKey(spec),
		Shard:     0,
		Of:        1,
		Spec:      spec,
		Scenarios: []int{1},
	})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Scenario.Index != 1 {
		t.Fatalf("shard results = %+v, want scenario 1 only", resp.Results)
	}
	direct, err := (&scenario.Runner{Workers: 1}).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].SimDigest != direct.Results[1].SimDigest {
		t.Errorf("shard digest %s != direct digest %s", resp.Results[0].SimDigest, direct.Results[1].SimDigest)
	}

	var apiErr *api.Error
	for name, bad := range map[string]api.ShardRequest{
		"empty indices":      {Spec: spec},
		"descending indices": {Spec: spec, Scenarios: []int{1, 0}},
		"out of range":       {Spec: spec, Scenarios: []int{99}},
		"invalid spec":       {Spec: scenario.Spec{Days: -3}, Scenarios: []int{0}},
	} {
		_, err := client.RunShard(ctx, bad)
		if !errors.As(err, &apiErr) || apiErr.Code != api.ErrBadRequest {
			t.Errorf("%s: err = %v, want bad_request", name, err)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsServed != 1 {
		t.Errorf("stats shards_served = %d, want 1", st.ShardsServed)
	}
}

// decodeJSON decodes an HTTP response body and closes it.
func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding %d response: %w", resp.StatusCode, err)
	}
	return nil
}

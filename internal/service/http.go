package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// maxSpecBytes bounds a submitted spec body; real specs are a few
// hundred bytes. Shard requests add an index slice, still far below
// this.
const maxSpecBytes = 1 << 20

// ResultsPayload is an alias of the canonical wire type in internal/api.
type ResultsPayload = api.ResultsPayload

// NewHandler serves the twinserver v1 HTTP API for svc. The wire
// contract — endpoints, envelopes, error codes — is specified in
// docs/api.md; the shapes live in internal/api.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			api.WriteMethodNotAllowed(w, "GET")
			return
		}
		api.WriteJSON(w, http.StatusOK, api.Health{OK: true})
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			api.WriteMethodNotAllowed(w, "GET")
			return
		}
		api.WriteJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc(api.PathPrefix+"/sweeps", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			handleSubmit(svc, w, r)
		case http.MethodGet:
			handleList(svc, w, r)
		default:
			api.WriteMethodNotAllowed(w, "GET, POST")
		}
	})
	mux.HandleFunc(api.PathPrefix+"/sweeps/", func(w http.ResponseWriter, r *http.Request) {
		handleSweep(svc, w, r)
	})
	mux.HandleFunc(api.PathPrefix+"/shards", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			api.WriteMethodNotAllowed(w, "POST")
			return
		}
		handleShard(svc, w, r)
	})
	return mux
}

func handleSubmit(svc *Service, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest, "reading body: "+err.Error())
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest, err.Error())
		return
	}
	wait := isTrue(r.URL.Query().Get("wait"))

	// A waiting client is attached: its disconnect releases its
	// reference on the sweep. A fire-and-poll submission pins the sweep
	// so it survives the immediate end of this request.
	sw, joined, err := svc.Submit(r.Context(), spec, wait)
	if err != nil {
		var oe *OverloadError
		if errors.As(err, &oe) {
			api.WriteOverloaded(w, oe.RetryAfter, err.Error())
			return
		}
		code, ec := http.StatusBadRequest, api.ErrBadRequest
		if errors.Is(err, ErrShutdown) {
			code, ec = http.StatusServiceUnavailable, api.ErrUnavailable
		}
		api.WriteError(w, code, ec, err.Error())
		return
	}
	if !wait {
		code := http.StatusAccepted
		if joined {
			code = http.StatusOK
		}
		api.WriteJSON(w, code, sw.Status())
		return
	}
	select {
	case <-sw.Done():
		writeTerminal(w, sw)
	case <-r.Context().Done():
		// Client gone; the attach reference it held has been released.
	}
}

func handleList(svc *Service, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := api.DefaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest,
				"limit must be a positive integer, got "+strconv.Quote(v))
			return
		}
		limit = n
	}
	var states map[State]bool
	if v := q.Get("state"); v != "" {
		states = make(map[State]bool)
		for _, part := range strings.Split(v, ",") {
			st := State(strings.TrimSpace(part))
			if !api.ValidState(st) {
				api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest,
					"unknown state "+strconv.Quote(string(st))+
						"; valid states: pending, running, done, failed, canceled")
				return
			}
			states[st] = true
		}
	}
	all := svc.List()
	page := api.SweepList{Sweeps: []api.SweepStatus{}}
	for _, st := range all {
		if states != nil && !states[st.State] {
			continue
		}
		page.Total++
		if len(page.Sweeps) < limit {
			page.Sweeps = append(page.Sweeps, st)
		}
	}
	api.WriteJSON(w, http.StatusOK, page)
}

func handleSweep(svc *Service, w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, api.PathPrefix+"/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	if sub != "" && sub != "results" {
		api.WriteError(w, http.StatusNotFound, api.ErrNotFound, "no such resource "+r.URL.Path)
		return
	}
	sw, ok := svc.Get(id)
	if !ok {
		api.WriteError(w, http.StatusNotFound, api.ErrNotFound, "no such sweep "+id)
		return
	}
	switch {
	case r.Method == http.MethodDelete && sub == "":
		svc.Cancel(id)
		api.WriteJSON(w, http.StatusOK, sw.Status())
	case r.Method == http.MethodGet && sub == "":
		api.WriteJSON(w, http.StatusOK, sw.Status())
	case r.Method == http.MethodGet && sub == "results":
		st := sw.Status()
		if !st.State.Terminal() {
			api.WriteErrorStatus(w, http.StatusConflict, api.ErrSweepNotDone,
				"sweep "+id+" is "+string(st.State), st)
			return
		}
		writeTerminal(w, sw)
	case sub == "results":
		api.WriteMethodNotAllowed(w, "GET")
	default:
		api.WriteMethodNotAllowed(w, "GET, DELETE")
	}
}

func handleShard(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req api.ShardRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes)).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadRequest, "decoding shard request: "+err.Error())
		return
	}
	resp, err := svc.RunShard(r.Context(), req)
	if err != nil {
		writeShardError(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// writeShardError maps a shard failure onto the envelope the
// coordinator's retry policy keys on: unavailable (503) means "try
// another replica", shard_failed (500) means "this sweep is broken —
// re-dispatching cannot help", bad_request (400) means the request
// itself was malformed.
func writeShardError(w http.ResponseWriter, err error) {
	var apiErr *api.Error
	switch {
	case errors.Is(err, ErrShutdown):
		api.WriteError(w, http.StatusServiceUnavailable, api.ErrUnavailable, err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The coordinator hung up or its shard deadline passed mid-run;
		// answer 503 for any proxy still listening.
		api.WriteError(w, http.StatusServiceUnavailable, api.ErrUnavailable, "shard cancelled: "+err.Error())
	case errors.As(err, &apiErr):
		code := http.StatusInternalServerError
		if apiErr.Code == api.ErrUnavailable {
			code = http.StatusServiceUnavailable
		} else if apiErr.Code == api.ErrBadRequest {
			code = http.StatusBadRequest
		}
		api.WriteJSON(w, code, api.ErrorEnvelope{Error: apiErr})
	default:
		api.WriteError(w, http.StatusInternalServerError, api.ErrShardFailed, err.Error())
	}
}

// writeTerminal renders a finished sweep: the results payload when it
// completed, an error envelope embedding the terminal status otherwise.
func writeTerminal(w http.ResponseWriter, sw *Sweep) {
	res, err := sw.Results()
	st := sw.Status()
	switch {
	case err != nil:
		if st.State == StateCanceled {
			api.WriteErrorStatus(w, http.StatusConflict, api.ErrSweepCanceled,
				"sweep "+sw.ID+" was cancelled", st)
			return
		}
		api.WriteErrorStatus(w, http.StatusInternalServerError, api.ErrSweepFailed,
			"sweep "+sw.ID+" failed: "+st.Error, st)
	case res != nil:
		payload := ResultsPayload{
			ID:          sw.ID,
			Spec:        res.Spec,
			Workers:     res.Workers,
			Simulations: res.Simulations,
			Results:     res.Results,
			DeltaTable:  res.Table(),
			RegimeTable: res.RegimeTable(),
		}
		if res.CarbonSwept() {
			payload.CarbonTable = res.CarbonTable()
		}
		api.WriteJSON(w, http.StatusOK, payload)
	default:
		// Terminal without results or error cannot happen; be explicit
		// rather than serving an empty 200.
		api.WriteError(w, http.StatusInternalServerError, api.ErrInternal, "sweep finished without results")
	}
}

func isTrue(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes":
		return true
	}
	return false
}

package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"github.com/greenhpc/archertwin/internal/report"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// maxSpecBytes bounds a submitted spec body; real specs are a few
// hundred bytes.
const maxSpecBytes = 1 << 20

// ResultsPayload is the JSON body served for a completed sweep: the raw
// per-scenario results (each carrying its simulation's core.Results
// digest) plus the rendered comparison tables in structured form.
type ResultsPayload struct {
	ID          string             `json:"id"`
	Spec        scenario.Spec      `json:"spec"`
	Workers     int                `json:"workers"`
	Simulations int                `json:"simulations"`
	Results     []scenario.Result  `json:"results"`
	DeltaTable  *report.DeltaTable `json:"delta_table"`
	RegimeTable *report.Table      `json:"regime_table"`
	CarbonTable *report.Table      `json:"carbon_table,omitempty"`
}

// NewHandler serves the twinserver HTTP API for svc:
//
//	POST   /v1/sweeps            submit a JSON scenario.Spec; 202 + status
//	                             (200 if coalesced onto an existing sweep).
//	                             ?wait=1 blocks and answers with the
//	                             results payload when the sweep completes.
//	GET    /v1/sweeps            list sweep statuses, newest first
//	GET    /v1/sweeps/{id}       one sweep's status and progress
//	GET    /v1/sweeps/{id}/results  completed results (409 until done)
//	DELETE /v1/sweeps/{id}       cancel the sweep
//	GET    /healthz              liveness
//	GET    /statz                cache + registry statistics
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("/v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			handleSubmit(svc, w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, svc.List())
		default:
			httpError(w, http.StatusMethodNotAllowed, "use POST or GET")
		}
	})
	mux.HandleFunc("/v1/sweeps/", func(w http.ResponseWriter, r *http.Request) {
		handleSweep(svc, w, r)
	})
	return mux
}

func handleSubmit(svc *Service, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	wait := isTrue(r.URL.Query().Get("wait"))

	// A waiting client is attached: its disconnect releases its
	// reference on the sweep. A fire-and-poll submission pins the sweep
	// so it survives the immediate end of this request.
	sw, joined, err := svc.Submit(r.Context(), spec, wait)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !wait {
		code := http.StatusAccepted
		if joined {
			code = http.StatusOK
		}
		writeJSON(w, code, sw.Status())
		return
	}
	select {
	case <-sw.Done():
		writeTerminal(w, sw)
	case <-r.Context().Done():
		// Client gone; the attach reference it held has been released.
	}
}

func handleSweep(svc *Service, w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	sw, ok := svc.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep "+id)
		return
	}
	switch {
	case r.Method == http.MethodDelete && sub == "":
		svc.Cancel(id)
		writeJSON(w, http.StatusOK, sw.Status())
	case r.Method == http.MethodGet && sub == "":
		writeJSON(w, http.StatusOK, sw.Status())
	case r.Method == http.MethodGet && sub == "results":
		st := sw.Status()
		if st.State == StatePending || st.State == StateRunning {
			writeJSON(w, http.StatusConflict, st)
			return
		}
		writeTerminal(w, sw)
	default:
		httpError(w, http.StatusMethodNotAllowed, "unsupported method or path")
	}
}

// writeTerminal renders a finished sweep: the results payload when it
// completed, its status otherwise (500 for a failure, 409 for a
// cancellation).
func writeTerminal(w http.ResponseWriter, sw *Sweep) {
	res, err := sw.Results()
	switch {
	case err != nil:
		code := http.StatusInternalServerError
		if sw.Status().State == StateCanceled {
			code = http.StatusConflict
		}
		writeJSON(w, code, sw.Status())
	case res != nil:
		payload := ResultsPayload{
			ID:          sw.ID,
			Spec:        res.Spec,
			Workers:     res.Workers,
			Simulations: res.Simulations,
			Results:     res.Results,
			DeltaTable:  res.Table(),
			RegimeTable: res.RegimeTable(),
		}
		if res.CarbonSwept() {
			payload.CarbonTable = res.CarbonTable()
		}
		writeJSON(w, http.StatusOK, payload)
	default:
		// Terminal without results or error cannot happen; be explicit
		// rather than serving an empty 200.
		httpError(w, http.StatusInternalServerError, "sweep finished without results")
	}
}

func isTrue(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes":
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		// The body is already streaming; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

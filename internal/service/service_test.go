package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/scenario"
)

// smallSpec is a single-scenario, single-simulation sweep that runs in
// well under a second.
func smallSpec() scenario.Spec {
	return scenario.Spec{Name: "e2e", Nodes: 32, Days: 2, WarmupDays: 1, Seed: 7}
}

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	t.Cleanup(svc.Shutdown)
	return svc, srv
}

func postSweep(t *testing.T, url string, spec scenario.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// The headline end-to-end property: two concurrent identical submissions
// coalesce onto one sweep, the underlying simulation executes exactly
// once, and both served results carry core.Results digests byte-identical
// to a direct Runner.Run of the same spec.
func TestServerConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	runner := &scenario.Runner{Workers: 2}
	_, srv := newTestServer(t, Config{Runner: runner})

	type outcome struct {
		code    int
		payload ResultsPayload
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp := postSweep(t, srv.URL+"/v1/sweeps?wait=1", smallSpec())
			defer resp.Body.Close()
			var p ResultsPayload
			if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
				t.Errorf("decoding response: %v", err)
			}
			results <- outcome{code: resp.StatusCode, payload: p}
		}()
	}
	a, b := <-results, <-results
	for _, o := range []outcome{a, b} {
		if o.code != http.StatusOK {
			t.Fatalf("wait-mode POST returned %d", o.code)
		}
		if len(o.payload.Results) != 1 {
			t.Fatalf("served %d results, want 1", len(o.payload.Results))
		}
	}
	if a.payload.ID != b.payload.ID {
		t.Errorf("identical submissions got different sweeps: %s vs %s", a.payload.ID, b.payload.ID)
	}

	// Exactly one simulation executed across both requests.
	if cs := runner.CacheStats(); cs.Misses != 1 {
		t.Errorf("cache stats %+v, want exactly 1 executed simulation", cs)
	}

	// Served digests match a direct in-process run on a fresh Runner.
	direct, err := (&scenario.Runner{Workers: 1}).Run(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Results[0].SimDigest
	if want == "" {
		t.Fatal("direct run produced no digest")
	}
	for _, o := range []outcome{a, b} {
		if got := o.payload.Results[0].SimDigest; got != want {
			t.Errorf("served digest %s != direct-run digest %s", got, want)
		}
	}
}

// The async flow: submit, poll status, fetch results; a repeat
// submission of the same spec joins the completed sweep instead of
// re-running it.
func TestServerAsyncSubmitPollResults(t *testing.T) {
	runner := &scenario.Runner{Workers: 2}
	_, srv := newTestServer(t, Config{Runner: runner})

	resp := postSweep(t, srv.URL+"/v1/sweeps", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST returned %d, want 202", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.State == "" {
		t.Fatalf("degenerate status: %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in state %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(srv.URL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == StateFailed || st.State == StateCanceled {
			t.Fatalf("sweep ended %q: %s", st.State, st.Error)
		}
	}
	if st.Progress.Simulations != 1 || st.Progress.Done != 1 || st.Progress.Scenarios != 1 {
		t.Errorf("completed progress %+v, want 1/1 sims, 1 scenario", st.Progress)
	}

	r, err := http.Get(srv.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("results returned %d, want 200", r.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var table struct {
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(raw["delta_table"], &table); err != nil {
		t.Fatal(err)
	}
	if len(table.Headers) == 0 || len(table.Rows) != 1 {
		t.Errorf("delta table JSON %s lacks headers or rows", raw["delta_table"])
	}

	// A later identical submission joins the retained sweep: 200, same
	// ID, no new simulation.
	resp = postSweep(t, srv.URL+"/v1/sweeps", smallSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("repeat POST returned %d, want 200 (joined)", resp.StatusCode)
	}
	var again Status
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID {
		t.Errorf("repeat submission got sweep %s, want %s", again.ID, st.ID)
	}
	if cs := runner.CacheStats(); cs.Misses != 1 {
		t.Errorf("repeat submission re-simulated: %+v", cs)
	}
}

// blockingRun is a RunFunc that parks until its context is cancelled,
// signalling on started.
func blockingRun(started chan<- context.Context) RunFunc {
	return func(ctx context.Context, spec scenario.Spec, progress func(int, int)) (*scenario.SweepResults, error) {
		started <- ctx
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func waitForState(t *testing.T, svc *Service, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sw, ok := svc.Get(id)
		if !ok {
			t.Fatalf("sweep %s vanished", id)
		}
		if st := sw.Status().State; st == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %q, want %q", id, st, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A waiting client disconnecting mid-run cancels the sweep: the context
// reaches the executor and the sweep lands in the canceled state.
func TestServerClientDisconnectCancelsSweep(t *testing.T) {
	started := make(chan context.Context, 1)
	svc, srv := newTestServer(t, Config{Run: blockingRun(started)})

	body, _ := json.Marshal(smallSpec())
	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		srv.URL+"/v1/sweeps?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	runCtx := <-started // the sweep is executing
	cancelReq()         // ...and its only client walks away
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("request ended with %v, want context.Canceled", err)
	}
	select {
	case <-runCtx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sweep context never cancelled after client disconnect")
	}
	sts := svc.List()
	if len(sts) != 1 {
		t.Fatalf("registry holds %d sweeps, want 1", len(sts))
	}
	waitForState(t, svc, sts[0].ID, StateCanceled)
}

// With two attached waiters, one disconnect must not cancel the shared
// sweep; the second disconnect must.
func TestServerSharedSweepSurvivesOneDisconnect(t *testing.T) {
	started := make(chan context.Context, 1)
	svc, err := New(Config{Run: blockingRun(started)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	sw1, joined1, err := svc.Submit(ctx1, smallSpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	sw2, joined2, err := svc.Submit(ctx2, smallSpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	if joined1 || !joined2 || sw1 != sw2 {
		t.Fatalf("submissions did not coalesce: joined = %v/%v", joined1, joined2)
	}

	runCtx := <-started
	cancel1()
	select {
	case <-runCtx.Done():
		t.Fatal("sweep cancelled while a waiter remained attached")
	case <-time.After(50 * time.Millisecond):
	}
	cancel2()
	select {
	case <-runCtx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sweep survived its last waiter disconnecting")
	}
	waitForState(t, svc, sw1.ID, StateCanceled)
}

// An explicit DELETE cancels even a pinned (fire-and-poll) sweep.
func TestServerDeleteCancelsPinnedSweep(t *testing.T) {
	started := make(chan context.Context, 1)
	svc, srv := newTestServer(t, Config{Run: blockingRun(started)})

	resp := postSweep(t, srv.URL+"/v1/sweeps", smallSpec())
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-started

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE returned %d", dresp.StatusCode)
	}
	waitForState(t, svc, st.ID, StateCanceled)
}

// SpecKey identifies specs by meaning: omitted fields and spelled-out
// defaults coalesce, any effective difference separates.
func TestSpecKeyCanonicalisation(t *testing.T) {
	if SpecKey(scenario.Spec{}) != SpecKey(scenario.Spec{Name: "sweep", Nodes: 200, Days: 28, Seed: 42, Mode: scenario.ModeGrid}) {
		t.Error("explicit defaults and omitted fields produced different keys")
	}
	if SpecKey(scenario.Spec{}) == SpecKey(scenario.Spec{Days: 14}) {
		t.Error("different sweeps share a key")
	}
	// The carbon tunables canonicalise too: spelling out their defaults
	// must coalesce with omitting them.
	explicitCarbon := scenario.Spec{Carbon: scenario.CarbonSpec{
		MaxDelayHours: 8, FlexibleShare: 0.5, BudgetFraction: 0.85,
	}}
	if SpecKey(scenario.Spec{}) != SpecKey(explicitCarbon) {
		t.Error("explicit carbon defaults produced a different key")
	}
	if SpecKey(scenario.Spec{}) == SpecKey(scenario.Spec{Carbon: scenario.CarbonSpec{FlexibleShare: 0.9}}) {
		t.Error("different carbon tunables share a key")
	}
	// The warmup sentinel resolves stably: -1 keys the same sweep at any
	// canonicalisation depth.
	withSentinel := scenario.Spec{Days: 2, WarmupDays: -1}
	if SpecKey(withSentinel) != SpecKey(withSentinel.Canonical()) {
		t.Error("canonicalising changed the key of a warmup_days=-1 spec")
	}
}

// Service plumbing: bad specs are rejected at submission, unknown sweeps
// 404, and /healthz and /statz serve JSON.
func TestServerValidationAndIntrospection(t *testing.T) {
	runner := &scenario.Runner{Workers: 1}
	_, srv := newTestServer(t, Config{Runner: runner})

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json",
		bytes.NewReader([]byte(`{"nodes": 2}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec returned %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/sweeps/sweep-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep returned %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var ok map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil || !ok["ok"] {
		t.Errorf("healthz = %v, %v", ok, err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.MaxConcurrent != 2 || stats.Cache.Capacity != scenario.DefaultMemoCap {
		t.Errorf("statz = %+v, want max_concurrent 2 and default cache capacity", stats)
	}
	// The byte-accounting fields must be on the wire under their stable
	// names (the CI service-smoke job asserts them with jq) with the
	// default budget resolved.
	var wire struct {
		Cache map[string]json.Number `json:"cache"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"bytes", "budget_bytes"} {
		if _, okField := wire.Cache[field]; !okField {
			t.Errorf("statz cache payload lacks %q: %s", field, raw)
		}
	}
	if stats.Cache.BudgetBytes != scenario.DefaultMemoBudgetBytes {
		t.Errorf("budget_bytes = %d, want default %d", stats.Cache.BudgetBytes, scenario.DefaultMemoBudgetBytes)
	}
}

// The registry is bounded: finished sweeps beyond MaxFinished are
// retired oldest-first, disappear from queries, and stop serving dedup
// joins — a fresh identical submission starts a new sweep.
func TestServerRetiresFinishedSweeps(t *testing.T) {
	immediate := func(ctx context.Context, spec scenario.Spec, progress func(int, int)) (*scenario.SweepResults, error) {
		return &scenario.SweepResults{Spec: spec}, nil
	}
	svc, err := New(Config{Run: immediate, MaxFinished: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()

	specA, specB := smallSpec(), smallSpec()
	specB.Days = 3
	swA, _, err := svc.Submit(context.Background(), specA, false)
	if err != nil {
		t.Fatal(err)
	}
	<-swA.Done()
	swB, _, err := svc.Submit(context.Background(), specB, false)
	if err != nil {
		t.Fatal(err)
	}
	<-swB.Done()

	// MaxFinished 1: only the newer sweep survives.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Get(swA.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("oldest finished sweep never retired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sts := svc.List()
	if len(sts) != 1 || sts[0].ID != swB.ID {
		t.Fatalf("registry = %+v, want only %s", sts, swB.ID)
	}

	// A repeat of the retired spec starts a fresh sweep.
	swA2, joined, err := svc.Submit(context.Background(), specA, false)
	if err != nil {
		t.Fatal(err)
	}
	if joined || swA2.ID == swA.ID {
		t.Errorf("retired sweep still served joins: joined=%v id=%s", joined, swA2.ID)
	}
	<-swA2.Done()

	// List orders newest submission first.
	sts = svc.List()
	if len(sts) == 2 && !sts[0].Submitted.Before(sts[1].Submitted) && sts[0].ID != swA2.ID {
		t.Errorf("list order unexpected: %v then %v", sts[0].ID, sts[1].ID)
	}
}

package service

// Durable mode. With Config.Journal set, the service journals every
// registry transition before acknowledging it — a submission is not
// accepted until its SweepSubmitted record is committed, a scenario's
// result is journaled (with its simulation digest) as each partition
// group completes, and terminal states land as SweepTerminal records.
// Recover replays the log on startup: finished sweeps re-register with
// their results reassembled from the journal, unfinished ones resume
// with only their missing scenario indices re-executed through the same
// RunScenarios partition layer the fabric shards through — so a
// restarted twinserver picks up mid-sweep instead of recomputing, and
// the recovered results are byte-identical (digests and tables) to an
// uninterrupted run.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// OverloadError is Submit shedding load: the executor queue is past
// MaxPending or the journal disk stalled past its commit deadline.
// The HTTP layer maps it to 429 with a Retry-After header; api.Client
// honors that with jittered backoff.
type OverloadError struct {
	RetryAfter time.Duration
	Reason     string
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: overloaded (%s); retry in %s", e.Reason, e.RetryAfter)
}

// shedRetryAfter estimates when a shed client should come back: one
// executor drain interval per queued batch, capped so the hint stays
// actionable.
func shedRetryAfter(pending, slots int) time.Duration {
	if slots < 1 {
		slots = 1
	}
	d := time.Duration(1+pending/slots) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// journalSubmit commits a sweep's registration record; called before
// the submission is acknowledged. A stalled journal disk surfaces as an
// *OverloadError so the client backs off instead of queueing behind a
// dead disk.
func (s *Service) journalSubmit(ctx context.Context, sw *Sweep) error {
	err := s.cfg.Journal.Append(&journal.SweepSubmitted{
		ID: sw.ID, Key: sw.Key, Spec: sw.Spec,
		Scenarios: sw.scenarios, Submitted: sw.submitted,
	})
	if err == nil {
		err = s.cfg.Journal.Commit(ctx)
	}
	switch {
	case err == nil:
		s.trackLive(sw.ID)
		return nil
	case errors.Is(err, journal.ErrStalled):
		return &OverloadError{RetryAfter: 5 * time.Second, Reason: "journal disk stalled"}
	default:
		return fmt.Errorf("service: journaling submission: %w", err)
	}
}

// runDurable executes one sweep with journaled checkpoints: recovered
// results (from a previous incarnation's journal) fill their slots
// verbatim, the missing partition groups run through RunScenarios, and
// each group's results are journaled and committed as it lands — the
// resume granularity after the next crash.
func (s *Service) runDurable(ctx context.Context, sw *Sweep) (*scenario.SweepResults, error) {
	spec := sw.Spec
	part, err := spec.Partition()
	if err != nil {
		return nil, err
	}
	n := len(part.Keys)
	results := make([]*scenario.Result, n)
	for idx, res := range sw.recovered {
		if idx >= 0 && idx < n && res.Scenario.Index == idx && res.SimDigest != "" {
			r := res
			results[idx] = &r
		}
	}

	// Progress counts distinct resolved simulations, the same unit a
	// direct RunProgress reports.
	var pmu sync.Mutex
	resolved := map[string]bool{}
	for i, r := range results {
		if r != nil {
			resolved[part.RunKeys[i]] = true
		}
	}
	report := func() {
		pmu.Lock()
		done := len(resolved)
		pmu.Unlock()
		sw.setProgress(done, part.Simulations)
	}
	report()

	var missing [][]int
	for _, key := range part.GroupOrder {
		var need []int
		for _, i := range part.Groups[key] {
			if results[i] == nil {
				need = append(need, i)
			}
		}
		if len(need) > 0 {
			missing = append(missing, need)
		}
	}

	if len(missing) > 0 {
		// Groups run concurrently up to the Runner's pool width; each
		// group is one simulation (or checkpoint/fork family), so
		// journaling per group bounds lost work to one simulation.
		width := s.cfg.Runner.Workers
		if width <= 0 {
			width = runtime.GOMAXPROCS(0)
		}
		groupCtx, cancelGroups := context.WithCancel(ctx)
		defer cancelGroups()
		var (
			wg       sync.WaitGroup
			sem      = make(chan struct{}, width)
			errMu    sync.Mutex
			firstErr error
		)
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			cancelGroups()
		}
		for _, g := range missing {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-groupCtx.Done():
					return
				}
				res, _, err := s.cfg.Runner.RunScenarios(groupCtx, spec, g, nil)
				if err != nil {
					fail(err)
					return
				}
				recs := make([]journal.Record, len(res))
				for j, r := range res {
					recs[j] = &journal.ScenarioDone{Sweep: sw.ID, Index: g[j], Result: r}
				}
				if err := s.cfg.Journal.Append(recs...); err == nil {
					err = s.cfg.Journal.Commit(groupCtx)
				}
				if err != nil {
					fail(fmt.Errorf("service: journaling scenario results: %w", err))
					return
				}
				pmu.Lock()
				for j := range res {
					r := res[j]
					results[g[j]] = &r
					resolved[part.RunKeys[g[j]]] = true
				}
				pmu.Unlock()
				report()
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	merged := make([]scenario.Result, n)
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("service: scenario %d unresolved after durable run", i)
		}
		merged[i] = *r
	}
	workers := s.cfg.Runner.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > part.Simulations {
		workers = part.Simulations
	}
	return scenario.Assemble(spec, merged, workers)
}

// journalTerminal records a sweep reaching a terminal state. During a
// drain, cancellation means "the process is exiting with this sweep
// unfinished" — journaled as interrupted so recovery resumes it rather
// than treating it as deliberately cancelled. Journal failures here are
// deliberately swallowed: at worst the next recovery re-finishes the
// sweep, which is safe because execution is deterministic.
func (s *Service) journalTerminal(sw *Sweep) {
	if s.cfg.Journal == nil {
		return
	}
	st := sw.Status()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	var state string
	switch st.State {
	case StateDone:
		state = journal.TerminalDone
	case StateFailed:
		state = journal.TerminalFailed
	case StateCanceled:
		if draining {
			state = journal.TerminalInterrupted
		} else {
			state = journal.TerminalCanceled
		}
	default:
		return
	}
	rec := &journal.SweepTerminal{Sweep: sw.ID, State: state, Error: st.Error}
	if st.Finished != nil {
		rec.Finished = *st.Finished
	}
	if res, _ := sw.Results(); res != nil {
		rec.Workers = res.Workers
	}
	if err := s.cfg.Journal.Append(rec); err != nil {
		return
	}
	if err := s.cfg.Journal.Commit(context.Background()); err != nil {
		return
	}
	if state != journal.TerminalInterrupted {
		s.trackTerminal(sw.ID)
		s.maybeCompact()
	}
}

// trackLive marks a sweep's journal records as retained.
func (s *Service) trackLive(id string) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.jLive[id] = true
}

// trackTerminal queues a finally-terminal sweep (done/failed/canceled —
// not interrupted, which must survive for resumption) for retention
// accounting.
func (s *Service) trackTerminal(id string) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.jTerm = append(s.jTerm, id)
}

// maybeCompact drops the oldest finally-terminal sweeps past the
// retention bound from the live set and compacts the journal. Segment-
// granular: records disappear from disk only when every record in their
// segment is dead.
func (s *Service) maybeCompact() {
	s.jmu.Lock()
	dropped := 0
	for len(s.jTerm) > s.cfg.Retention {
		delete(s.jLive, s.jTerm[0])
		s.jTerm = s.jTerm[1:]
		dropped++
	}
	s.jmu.Unlock()
	if dropped == 0 {
		return
	}
	_, _ = s.cfg.Journal.Compact(func(rec journal.Record) bool {
		s.jmu.Lock()
		defer s.jmu.Unlock()
		return s.jLive[rec.SweepID()]
	})
}

// RecoveryStats summarises what Recover found in the journal.
type RecoveryStats struct {
	// Sweeps is how many journaled sweeps were re-registered.
	Sweeps int
	// Resumed is how many were unfinished (or interrupted) and resumed
	// execution.
	Resumed int
	// Finished is how many were already terminal and re-registered
	// with their journaled outcome.
	Finished int
	// ReusedResults counts journaled scenario results reused verbatim
	// instead of re-simulated.
	ReusedResults int
}

// Recover replays the journal and rebuilds the sweep registry: finished
// sweeps re-register with their results assembled from journaled
// records, unfinished ones resume executing their missing scenario
// indices. Call once, after New and before serving traffic; the service
// must be otherwise idle.
func (s *Service) Recover(ctx context.Context) (RecoveryStats, error) {
	var stats RecoveryStats
	if s.cfg.Journal == nil {
		return stats, errors.New("service: Recover requires durable mode (Config.Journal)")
	}
	type sweepState struct {
		sub     *journal.SweepSubmitted
		results map[int]scenario.Result
		term    *journal.SweepTerminal
	}
	states := map[string]*sweepState{}
	var order []string
	err := s.cfg.Journal.Replay(func(rec journal.Record) error {
		id := rec.SweepID()
		st, ok := states[id]
		if !ok {
			st = &sweepState{results: map[int]scenario.Result{}}
			states[id] = st
			order = append(order, id)
		}
		switch r := rec.(type) {
		case *journal.SweepSubmitted:
			st.sub = r
		case *journal.ScenarioDone:
			st.results[r.Index] = r.Result
		case *journal.SweepTerminal:
			// Latest terminal wins: a done overwritten by an interrupted
			// (a drain racing completion) resumes and re-finishes
			// identically.
			st.term = r
		}
		return nil
	})
	if err != nil {
		return stats, err
	}

	for _, id := range order {
		st := states[id]
		if st.sub == nil {
			// Orphan records of a compacted-away sweep sharing a segment
			// with a live one; nothing to restore.
			continue
		}
		stats.Sweeps++
		var seq int
		if _, err := fmt.Sscanf(id, "sweep-%d", &seq); err == nil {
			s.mu.Lock()
			if seq > s.nextID {
				s.nextID = seq
			}
			s.mu.Unlock()
		}
		s.trackLive(id)

		final := st.term != nil && st.term.State != journal.TerminalInterrupted
		if final && st.term.State == journal.TerminalDone {
			if res, err := assembleRecovered(st.sub, st.results, st.term.Workers); err == nil {
				sw, _ := s.newRecoveredSweep(st.sub, nil)
				sw.finished = st.term.Finished
				sw.st, sw.res = StateDone, res
				sw.simsTotal, sw.simsDone = res.Simulations, res.Simulations
				close(sw.done)
				s.publish(sw)
				s.retire(sw)
				s.trackTerminal(id)
				stats.Finished++
				stats.ReusedResults += len(st.results)
				continue
			}
			// A done terminal without its full result set (lost to a torn
			// tail): fall through and resume — determinism guarantees the
			// re-run finishes identically.
		}
		if final && st.term.State != journal.TerminalDone {
			sw, _ := s.newRecoveredSweep(st.sub, nil)
			sw.finished = st.term.Finished
			msg := st.term.Error
			if msg == "" {
				msg = "sweep " + st.term.State
			}
			if st.term.State == journal.TerminalCanceled {
				sw.st, sw.err = StateCanceled, errors.New(msg)
			} else {
				sw.st, sw.err = StateFailed, errors.New(msg)
			}
			close(sw.done)
			s.publish(sw)
			s.retire(sw)
			s.trackTerminal(id)
			stats.Finished++
			continue
		}

		// Unfinished (no terminal, or interrupted): resume with the
		// journaled results seeded in; only missing indices re-execute.
		sw, runCtx := s.newRecoveredSweep(st.sub, st.results)
		s.publish(sw)
		stats.Resumed++
		stats.ReusedResults += len(st.results)
		go s.execute(runCtx, sw)
	}
	s.maybeCompact()
	return stats, nil
}

// assembleRecovered rebuilds a completed sweep's results from its
// journaled records (workers comes from the terminal record, so the
// recovered payload matches the original byte for byte); errors if any
// scenario index is missing.
func assembleRecovered(sub *journal.SweepSubmitted, results map[int]scenario.Result, workers int) (*scenario.SweepResults, error) {
	merged := make([]scenario.Result, sub.Scenarios)
	for i := range merged {
		res, ok := results[i]
		if !ok {
			return nil, fmt.Errorf("service: recovered sweep %s is missing scenario %d", sub.ID, i)
		}
		merged[i] = res
	}
	return scenario.Assemble(sub.Spec, merged, workers)
}

// newRecoveredSweep re-creates a journaled sweep. Recovered sweeps are
// pinned: no client holds a reference, and an interrupted sweep must
// run to completion regardless. The caller finishes populating the
// sweep and then publishes it.
func (s *Service) newRecoveredSweep(sub *journal.SweepSubmitted, recovered map[int]scenario.Result) (*Sweep, context.Context) {
	runCtx, cancel := context.WithCancel(s.base)
	sw := &Sweep{
		ID:        sub.ID,
		Key:       sub.Key,
		Spec:      sub.Spec,
		scenarios: sub.Scenarios,
		submitted: sub.Submitted,
		st:        StatePending,
		cancel:    cancel,
		done:      make(chan struct{}),
		pinned:    true,
		recovered: recovered,
	}
	return sw, runCtx
}

// publish registers a (fully populated) recovered sweep.
func (s *Service) publish(sw *Sweep) {
	s.mu.Lock()
	s.sweeps[sw.ID] = sw
	s.byKey[sw.Key] = sw
	s.mu.Unlock()
}

// Drain stops accepting submissions and gives in-flight sweeps until
// ctx expires to finish naturally. Stragglers are then cancelled and —
// in durable mode — journaled as interrupted, so the next Recover
// resumes them. Returns how many sweeps were interrupted; the service
// is shut down when Drain returns.
func (s *Service) Drain(ctx context.Context) int {
	s.mu.Lock()
	s.draining = true
	var active []*Sweep
	for _, sw := range s.sweeps {
		if !sw.state().Terminal() {
			active = append(active, sw)
		}
	}
	s.mu.Unlock()

	for _, sw := range active {
		select {
		case <-sw.Done():
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	interrupted := 0
	for _, sw := range active {
		if !sw.state().Terminal() {
			interrupted++
		}
	}
	s.stop()
	// Bounded grace for the executors to unwind and journal their
	// interrupted records.
	grace := time.After(2 * time.Second)
	for _, sw := range active {
		select {
		case <-sw.Done():
		case <-grace:
		}
	}
	return interrupted
}

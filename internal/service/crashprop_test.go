package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/faultinject"
	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// TestCrashRecoveryPropertySuite is the durability acceptance property:
// for over a hundred seeded fault plans — each killing the journal
// (cleanly or with a torn write) at a different record ordinal, some
// never firing — a restarted service recovers to results byte-identical
// to an uninterrupted run (per-scenario simulation digests and rendered
// tables), re-simulating exactly the simulations whose results never
// reached the journal and no others.
//
// The crash model matches kill -9: whatever the journal committed
// survives, the process's in-memory registry is gone. Each seed is its
// own subtest, so a failing schedule replays from its name alone.
func TestCrashRecoveryPropertySuite(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 12
	}
	ctx := context.Background()
	spec := crashSpec().Canonical()
	part, err := spec.Partition()
	if err != nil {
		t.Fatal(err)
	}
	// The uninterrupted reference run every schedule must reproduce.
	refRunner := &scenario.Runner{Workers: 1}
	ref, err := refRunner.RunProgress(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	refDigests := digestsOf(ref)
	refTables := tablesJSON(t, ref)

	// A clean run writes 1 submission + len(part.Keys) scenario records
	// + 1 terminal; ordinals beyond that never fire (clean completion —
	// the suite wants those seeds too).
	maxRecords := len(part.Keys) + 4

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			plan := faultinject.NewCrashPlan(uint64(seed), maxRecords)

			// Incarnation one: run under the crash plan until it either
			// completes or the journal dies.
			jl1, err := journal.Open(dir, journal.Options{NoSync: true, Crash: plan.Hook()})
			if err != nil {
				t.Fatal(err)
			}
			svc1, err := New(Config{Runner: &scenario.Runner{Workers: 1}, Journal: jl1, MaxConcurrent: 1})
			if err != nil {
				t.Fatal(err)
			}
			sw1, _, submitErr := svc1.Submit(ctx, spec, false)
			if submitErr == nil {
				select {
				case <-sw1.Done():
				case <-time.After(30 * time.Second):
					t.Fatal("first incarnation wedged")
				}
			}
			svc1.Shutdown()
			jl1.Close() // flushes if healthy; a crashed log refuses — either is fine

			// Restart: inventory what actually reached disk, then recover.
			jl2, err := journal.Open(dir, journal.Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer jl2.Close()
			journaled := map[int]bool{}
			if err := jl2.Replay(func(rec journal.Record) error {
				if sd, ok := rec.(*journal.ScenarioDone); ok {
					journaled[sd.Index] = true
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// Exactly the simulations with unjournaled scenarios must
			// re-execute on the cold second runner.
			missingSims := map[string]bool{}
			for i, key := range part.RunKeys {
				if !journaled[i] {
					missingSims[key] = true
				}
			}

			runner2 := &scenario.Runner{Workers: 1}
			svc2, err := New(Config{Runner: runner2, Journal: jl2, MaxConcurrent: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer svc2.Shutdown()
			if _, err := svc2.Recover(ctx); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			var sw2 *Sweep
			if list := svc2.List(); len(list) == 1 {
				sw2, _ = svc2.Get(list[0].ID)
			} else if len(list) == 0 {
				// The crash beat the submission's commit: the client was
				// never acknowledged and retries against the new server.
				if sw2, _, err = svc2.Submit(ctx, spec, false); err != nil {
					t.Fatalf("resubmit after unacknowledged crash: %v", err)
				}
			} else {
				t.Fatalf("recovered %d sweeps, want at most 1", len(list))
			}
			select {
			case <-sw2.Done():
			case <-time.After(30 * time.Second):
				t.Fatal("recovered sweep wedged")
			}
			res, err := sw2.Results()
			if err != nil {
				t.Fatalf("recovered sweep failed (plan fired=%v at=%d torn=%v): %v",
					plan.Fired(), plan.CrashAt, plan.Torn, err)
			}
			if got := digestsOf(res); !equalStrings(got, refDigests) {
				t.Errorf("digests %v != reference %v", got, refDigests)
			}
			if got := tablesJSON(t, res); got != refTables {
				t.Errorf("rendered tables differ from reference:\n%s\nvs\n%s", got, refTables)
			}
			if misses := runner2.CacheStats().Misses; misses != len(missingSims) {
				t.Errorf("memo misses = %d, want %d (journaled results re-simulated, or missing ones skipped; plan fired=%v at=%d torn=%v)",
					misses, len(missingSims), plan.Fired(), plan.CrashAt, plan.Torn)
			}
		})
	}
}

// Package service is the long-lived face of the scenario engine: a sweep
// registry plus a bounded executor that turns one shared scenario.Runner
// into something a daemon (cmd/twinserver) can safely expose to many
// concurrent clients.
//
// Where the one-shot CLIs (cmd/sweep, cmd/gridcitizen) pay full
// simulation cost per invocation and exit, a Service keeps the Runner —
// and its LRU memo of completed simulations — alive across requests:
//
//   - every submitted sweep gets a registry entry with a state machine
//     (pending → running → done/failed/canceled) and live progress;
//   - concurrent submissions of the same canonical Spec coalesce onto one
//     execution (singleflight) — N identical requests cost one sweep, and
//     a completed sweep keeps serving later identical submissions from
//     the registry until it is retired;
//   - executions are bounded by a semaphore so a burst of distinct sweeps
//     queues instead of oversubscribing the machine (each sweep already
//     parallelises internally across the Runner's worker pool);
//   - cancellation is reference-counted: a sweep whose every attached
//     client has disconnected before completion is cancelled (the context
//     threads through Runner.Run into the event loop of each in-flight
//     simulation), while detached submissions pin the sweep until an
//     explicit Cancel or service Shutdown.
//
// Determinism is inherited, not re-implemented: a sweep served through
// the service carries the same per-simulation core.Results digests
// (Result.SimDigest) a direct Runner.Run would produce.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// The wire shapes the service serves are defined once, in internal/api;
// these aliases keep the service's own vocabulary (and its existing
// callers) pointing at the canonical definitions.
type (
	// State is a sweep's position in its lifecycle.
	State = api.SweepState
	// Progress is a sweep's execution progress in unique simulations.
	Progress = api.SweepProgress
	// Status is a point-in-time snapshot of a sweep.
	Status = api.SweepStatus
	// Stats is the service-level operational snapshot served by /statz.
	Stats = api.ServiceStats
)

// Sweep lifecycle states (aliased from api).
const (
	StatePending  = api.StatePending
	StateRunning  = api.StateRunning
	StateDone     = api.StateDone
	StateFailed   = api.StateFailed
	StateCanceled = api.StateCanceled
)

// ErrShutdown is returned by Submit and RunShard once Shutdown has been
// called.
var ErrShutdown = errors.New("service: shut down")

// RunFunc executes one sweep. The default is the configured Runner's
// RunProgress; tests substitute it to control timing and failure modes.
type RunFunc func(ctx context.Context, spec scenario.Spec, progress func(done, total int)) (*scenario.SweepResults, error)

// Config parameterises a Service.
type Config struct {
	// Runner executes sweeps and owns the cross-sweep memo cache.
	// Required unless Run is set.
	Runner *scenario.Runner
	// Run overrides the executor (tests). Nil means Runner.RunProgress.
	Run RunFunc
	// MaxConcurrent bounds concurrently executing sweeps (default 2);
	// each sweep already fans out internally across the Runner's workers.
	MaxConcurrent int
	// MaxFinished bounds how many finished sweeps the registry retains
	// for status/result queries and dedup of repeat submissions (default
	// 64); the oldest-finished are retired first. Results they pinned
	// remain reachable through the Runner's memo until that evicts them.
	MaxFinished int
	// Journal, when non-nil, makes the service durable: every registry
	// transition is journaled and committed before it is acknowledged,
	// and Recover replays the log on startup (see durable.go). Durable
	// mode requires Runner — the resume path re-executes missing
	// scenario indices through it — and is incompatible with a Run
	// override.
	Journal *journal.Log
	// Retention bounds how many finally-terminal sweeps keep their
	// records in the journal before compaction drops them (default:
	// MaxFinished). Interrupted sweeps are always retained — they are
	// the ones recovery exists for.
	Retention int
	// MaxPending bounds sweeps queued for an executor slot: once the
	// executor is saturated and this many sweeps are pending, Submit
	// sheds load with an *OverloadError (HTTP 429 + Retry-After)
	// instead of queueing unboundedly. 0 means unbounded (the
	// pre-durability behaviour).
	MaxPending int
}

// Service is a long-lived sweep registry and executor. Create with New;
// a Service must not be copied.
type Service struct {
	cfg  Config
	run  RunFunc
	sem  chan struct{}
	base context.Context
	stop context.CancelFunc

	mu           sync.Mutex
	sweeps       map[string]*Sweep // by ID
	byKey        map[string]*Sweep // latest sweep per canonical spec key
	finished     []string          // retirement order (IDs, oldest first)
	nextID       int
	shardsServed int  // completed POST /v1/shards executions
	draining     bool // Drain in progress: reject submissions, map cancellations to interrupted

	// Journal retention bookkeeping (durable mode; see durable.go).
	jmu   sync.Mutex
	jLive map[string]bool // sweep IDs whose journal records are retained
	jTerm []string        // finally-terminal sweep IDs, oldest first
}

// New creates a Service around cfg.
func New(cfg Config) (*Service, error) {
	if cfg.Runner == nil && cfg.Run == nil {
		return nil, errors.New("service: Config.Runner (or Run) is required")
	}
	if cfg.Journal != nil && (cfg.Runner == nil || cfg.Run != nil) {
		return nil, errors.New("service: durable mode (Config.Journal) requires Runner, without a Run override")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 64
	}
	if cfg.Retention <= 0 {
		cfg.Retention = cfg.MaxFinished
	}
	run := cfg.Run
	if run == nil {
		run = cfg.Runner.RunProgress
	}
	base, stop := context.WithCancel(context.Background())
	return &Service{
		cfg:    cfg,
		run:    run,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		base:   base,
		stop:   stop,
		sweeps: make(map[string]*Sweep),
		byKey:  make(map[string]*Sweep),
		jLive:  make(map[string]bool),
	}, nil
}

// Shutdown cancels every in-flight sweep and rejects further
// submissions. It does not wait for executors to unwind; callers that
// need to can poll sweep states.
func (s *Service) Shutdown() { s.stop() }

// SpecKey is the canonical identity of a sweep spec — the
// singleflight/dedup key. It delegates to api.SpecKey so client and
// server derive identical keys.
func SpecKey(spec scenario.Spec) string { return api.SpecKey(spec) }

// Submit registers a sweep for spec, or joins the caller onto an
// existing sweep with the same canonical spec that is pending, running
// or done (singleflight + registry dedup). The returned bool reports
// whether an existing sweep was joined.
//
// When attach is true the submission is tied to ctx: if every attached
// context is cancelled (clients disconnected) before the sweep finishes
// and no detached submission has pinned it, the sweep is cancelled. When
// attach is false the sweep is pinned and runs to completion unless
// explicitly cancelled or the service shuts down.
func (s *Service) Submit(ctx context.Context, spec scenario.Spec, attach bool) (*Sweep, bool, error) {
	if err := s.base.Err(); err != nil {
		return nil, false, ErrShutdown
	}
	// Validate (and count) up front so a bad spec fails the submission,
	// not the executor.
	scenarios, err := spec.Expand()
	if err != nil {
		return nil, false, err
	}
	spec = spec.Canonical()
	key := SpecKey(spec)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrShutdown
	}
	if sw := s.byKey[key]; sw != nil {
		if st := sw.state(); st != StateFailed && st != StateCanceled {
			s.mu.Unlock()
			sw.join(ctx, attach)
			return sw, true, nil
		}
	}
	// Load shedding: a new sweep that would queue beyond MaxPending is
	// refused with a Retry-After hint instead of growing the backlog.
	// Dedup joins above are exempt — they cost nothing to serve.
	if s.cfg.MaxPending > 0 && len(s.sem) == cap(s.sem) {
		pending := 0
		for _, sw := range s.sweeps {
			if sw.state() == StatePending {
				pending++
			}
		}
		if pending >= s.cfg.MaxPending {
			s.mu.Unlock()
			return nil, false, &OverloadError{
				RetryAfter: shedRetryAfter(pending, cap(s.sem)),
				Reason:     "executor saturated",
			}
		}
	}
	s.nextID++
	runCtx, cancel := context.WithCancel(s.base)
	sw := &Sweep{
		ID:        fmt.Sprintf("sweep-%d", s.nextID),
		Key:       key,
		Spec:      spec,
		scenarios: len(scenarios),
		submitted: time.Now(),
		st:        StatePending,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	s.sweeps[sw.ID] = sw
	s.byKey[key] = sw
	s.mu.Unlock()

	// Durable mode: the submission is journaled and committed before it
	// is acknowledged. If the journal refuses (crash injection, disk
	// stall, full disk) the registration is rolled back — an
	// unacknowledged sweep must not survive a restart.
	if s.cfg.Journal != nil {
		if jerr := s.journalSubmit(ctx, sw); jerr != nil {
			s.mu.Lock()
			delete(s.sweeps, sw.ID)
			if s.byKey[key] == sw {
				delete(s.byKey, key)
			}
			s.mu.Unlock()
			sw.finish(nil, jerr)
			close(sw.done)
			sw.cancel()
			return nil, false, jerr
		}
	}

	sw.join(ctx, attach)
	go s.execute(runCtx, sw)
	return sw, false, nil
}

// Get returns the sweep with the given ID.
func (s *Service) Get(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// List returns every registered sweep's status, newest submission first.
func (s *Service) List() []Status {
	s.mu.Lock()
	sweeps := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		sweeps = append(sweeps, sw)
	}
	s.mu.Unlock()
	out := make([]Status, len(sweeps))
	for i, sw := range sweeps {
		out[i] = sw.Status()
	}
	// Newest submission first; ID breaks ties between same-instant
	// submissions for a stable order.
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.After(out[j].Submitted)
		}
		return out[i].ID > out[j].ID
	})
	return out
}

// Cancel cancels the sweep with the given ID, regardless of pins or
// attached clients. It reports whether the sweep exists.
func (s *Service) Cancel(id string) bool {
	sw, ok := s.Get(id)
	if !ok {
		return false
	}
	sw.cancel()
	return true
}

// Stats returns the operational snapshot.
func (s *Service) Stats() Stats {
	st := Stats{Sweeps: make(map[State]int), MaxConcurrent: cap(s.sem), Executing: len(s.sem)}
	if s.cfg.Runner != nil {
		st.Cache = s.cfg.Runner.CacheStats()
	}
	s.mu.Lock()
	for _, sw := range s.sweeps {
		st.Sweeps[sw.state()]++
	}
	st.ShardsServed = s.shardsServed
	s.mu.Unlock()
	return st
}

// RunShard executes one shard of a sweep on behalf of a fabric
// coordinator: the spec's expanded scenarios at the requested indices,
// under the same executor semaphore that bounds whole sweeps. Results
// come back in request order, each carrying its global expansion index
// and simulation digest; repeated shards are cheap because the Runner's
// memo already holds their simulations.
func (s *Service) RunShard(ctx context.Context, req api.ShardRequest) (*api.ShardResponse, error) {
	if err := s.base.Err(); err != nil {
		return nil, ErrShutdown
	}
	if s.cfg.Runner == nil {
		return nil, &api.Error{Code: api.ErrUnavailable, Message: "server has no runner (coordinator mode?)"}
	}
	// Validate the request up front so malformed shards answer
	// bad_request (the coordinator's fault) rather than shard_failed
	// (the sweep's fault).
	scenarios, err := req.Spec.Expand()
	if err != nil {
		return nil, &api.Error{Code: api.ErrBadRequest, Message: err.Error()}
	}
	if len(req.Scenarios) == 0 {
		return nil, &api.Error{Code: api.ErrBadRequest, Message: "shard request lists no scenarios"}
	}
	last := -1
	for _, idx := range req.Scenarios {
		if idx <= last || idx >= len(scenarios) {
			return nil, &api.Error{Code: api.ErrBadRequest,
				Message: fmt.Sprintf("scenario indices must be ascending, unique and below %d", len(scenarios))}
		}
		last = idx
	}
	// Shards queue behind the same slot bound as whole sweeps so a
	// coordinator burst cannot oversubscribe a worker.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	results, sims, err := s.cfg.Runner.RunScenarios(ctx, req.Spec, req.Scenarios, nil)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.shardsServed++
	s.mu.Unlock()
	return &api.ShardResponse{Shard: req.Shard, Results: results, Simulations: sims}, nil
}

// execute runs one sweep under the concurrency bound.
func (s *Service) execute(ctx context.Context, sw *Sweep) {
	defer close(sw.done)
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		sw.finish(nil, ctx.Err())
		s.journalTerminal(sw)
		s.retire(sw)
		return
	}
	sw.setRunning()
	var res *scenario.SweepResults
	var err error
	if s.cfg.Journal != nil {
		res, err = s.runDurable(ctx, sw)
	} else {
		res, err = s.run(ctx, sw.Spec, sw.setProgress)
	}
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	sw.finish(res, err)
	s.journalTerminal(sw)
	s.retire(sw)
}

// retire records a finished sweep and evicts the oldest finished sweeps
// beyond the registry bound. A retired sweep disappears from status
// queries and no longer serves dedup joins; its simulations stay
// reachable through the Runner's memo until the LRU evicts them.
func (s *Service) retire(sw *Sweep) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, sw.ID)
	for len(s.finished) > s.cfg.MaxFinished {
		id := s.finished[0]
		s.finished = s.finished[1:]
		old, ok := s.sweeps[id]
		if !ok {
			continue
		}
		delete(s.sweeps, id)
		if s.byKey[old.Key] == old {
			delete(s.byKey, old.Key)
		}
	}
}

// Sweep is one registered sweep. The exported fields are immutable after
// creation; everything mutable is behind Status and Results.
type Sweep struct {
	ID   string
	Key  string
	Spec scenario.Spec

	scenarios int
	cancel    context.CancelFunc
	done      chan struct{}
	recovered map[int]scenario.Result // journaled results seeded by Recover, keyed by expansion index

	mu        sync.Mutex
	st        State
	submitted time.Time
	started   time.Time
	finished  time.Time
	simsTotal int
	simsDone  int
	res       *scenario.SweepResults
	err       error
	waiters   int
	pinned    bool
}

// Done is closed when the sweep reaches a terminal state.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Status snapshots the sweep.
func (sw *Sweep) Status() Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := Status{
		ID:        sw.ID,
		Name:      sw.Spec.Name,
		SpecKey:   sw.Key,
		State:     sw.st,
		Submitted: sw.submitted,
		Progress:  Progress{Scenarios: sw.scenarios, Simulations: sw.simsTotal, Done: sw.simsDone},
	}
	if !sw.started.IsZero() {
		t := sw.started
		st.Started = &t
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		st.Finished = &t
	}
	if sw.err != nil {
		st.Error = sw.err.Error()
	}
	return st
}

// Results returns the completed sweep's results, or the terminal error.
// Before the sweep finishes both returns are nil.
func (sw *Sweep) Results() (*scenario.SweepResults, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.res, sw.err
}

func (sw *Sweep) state() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.st
}

// join ties a submission to the sweep: attached contexts are
// reference-counted for disconnect cancellation, detached submissions
// pin the sweep alive.
func (sw *Sweep) join(ctx context.Context, attach bool) {
	sw.mu.Lock()
	if !attach || ctx == nil || ctx.Done() == nil {
		sw.pinned = true
		sw.mu.Unlock()
		return
	}
	sw.waiters++
	sw.mu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
			sw.detach()
		case <-sw.done:
		}
	}()
}

// detach drops one attached client; the last one out cancels an
// unpinned, unfinished sweep.
func (sw *Sweep) detach() {
	sw.mu.Lock()
	sw.waiters--
	abandon := sw.waiters == 0 && !sw.pinned && sw.st != StateDone &&
		sw.st != StateFailed && sw.st != StateCanceled
	sw.mu.Unlock()
	if abandon {
		sw.cancel()
	}
}

func (sw *Sweep) setRunning() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.st = StateRunning
	sw.started = time.Now()
}

func (sw *Sweep) setProgress(done, total int) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.simsDone, sw.simsTotal = done, total
}

func (sw *Sweep) finish(res *scenario.SweepResults, err error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.finished = time.Now()
	switch {
	case err == nil:
		sw.st, sw.res = StateDone, res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		sw.st, sw.err = StateCanceled, err
	default:
		sw.st, sw.err = StateFailed, err
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/api"
	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/scenario"
)

// crashSpec is the durability acceptance sweep: two axes, four
// scenarios, two distinct simulations (the grid axis shares them), so a
// crash can land between any two of its ~6 journal records.
func crashSpec() scenario.Spec {
	return scenario.Spec{
		Name:  "crash",
		Nodes: 32,
		Days:  1,
		Seed:  11,
		Axes: scenario.Axes{
			Frequency: []string{"stock", "capped"},
			GridMean:  []float64{200, 65},
		},
	}
}

// digestsOf extracts the per-scenario simulation digests in expansion
// order — the byte-identity witness.
func digestsOf(res *scenario.SweepResults) []string {
	out := make([]string, len(res.Results))
	for i, r := range res.Results {
		out[i] = r.SimDigest
	}
	return out
}

// tablesJSON renders the comparison tables to JSON: recovered sweeps
// must reproduce them byte for byte.
func tablesJSON(t *testing.T, res *scenario.SweepResults) string {
	t.Helper()
	payload := struct {
		Delta  any `json:"delta"`
		Regime any `json:"regime"`
	}{res.Table(), res.RegimeTable()}
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func waitDone(t *testing.T, sw *Sweep) {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("sweep %s did not finish", sw.ID)
	}
}

// TestDurableCompleteAndRecoverFinished: a completed sweep survives a
// restart — it re-registers from the journal with byte-identical
// results, zero re-simulation, and keeps serving dedup joins.
func TestDurableCompleteAndRecoverFinished(t *testing.T) {
	ctx := context.Background()
	spec := crashSpec()
	dir := t.TempDir()

	jl1, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	runner1 := &scenario.Runner{Workers: 1}
	svc1, err := New(Config{Runner: runner1, Journal: jl1})
	if err != nil {
		t.Fatal(err)
	}
	sw, joined, err := svc1.Submit(ctx, spec, false)
	if err != nil || joined {
		t.Fatalf("Submit = (joined=%v, %v), want fresh sweep", joined, err)
	}
	waitDone(t, sw)
	res1, err := sw.Results()
	if err != nil {
		t.Fatal(err)
	}
	svc1.Shutdown()
	if err := jl1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh journal handle, fresh runner (cold memo).
	jl2, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	runner2 := &scenario.Runner{Workers: 1}
	svc2, err := New(Config{Runner: runner2, Journal: jl2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown()
	stats, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sweeps != 1 || stats.Finished != 1 || stats.Resumed != 0 {
		t.Errorf("stats = %+v, want 1 sweep recovered finished", stats)
	}
	if stats.ReusedResults != len(res1.Results) {
		t.Errorf("ReusedResults = %d, want %d", stats.ReusedResults, len(res1.Results))
	}

	sw2, ok := svc2.Get(sw.ID)
	if !ok {
		t.Fatalf("recovered service lost sweep %s", sw.ID)
	}
	if st := sw2.Status(); st.State != StateDone {
		t.Fatalf("recovered state = %s, want done", st.State)
	}
	res2, err := sw2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestsOf(res2), digestsOf(res1); !equalStrings(got, want) {
		t.Errorf("recovered digests %v != original %v", got, want)
	}
	if got, want := tablesJSON(t, res2), tablesJSON(t, res1); got != want {
		t.Errorf("recovered tables differ:\n%s\nvs\n%s", got, want)
	}
	if res2.Workers != res1.Workers {
		t.Errorf("recovered workers = %d, want %d", res2.Workers, res1.Workers)
	}
	if misses := runner2.CacheStats().Misses; misses != 0 {
		t.Errorf("recovery re-simulated: %d memo misses, want 0", misses)
	}
	// The recovered sweep keeps serving singleflight joins.
	joinedSw, joined, err := svc2.Submit(ctx, spec, false)
	if err != nil || !joined || joinedSw.ID != sw.ID {
		t.Errorf("resubmission = (%v, joined=%v, %v), want join onto %s", joinedSw, joined, err, sw.ID)
	}
}

// TestDurableResumeFromPartialJournal: a journal holding a submission
// plus one group's results resumes with only the missing simulation
// re-executed, and the assembled sweep matches an uninterrupted run.
func TestDurableResumeFromPartialJournal(t *testing.T) {
	ctx := context.Background()
	spec := crashSpec().Canonical()
	part, err := spec.Partition()
	if err != nil {
		t.Fatal(err)
	}
	refRunner := &scenario.Runner{Workers: 1}
	ref, err := refRunner.RunProgress(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Craft the mid-crash journal: submission committed, first partition
	// group journaled, the rest lost.
	dir := t.TempDir()
	jl, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	group0 := part.Groups[part.GroupOrder[0]]
	recs := []journal.Record{&journal.SweepSubmitted{
		ID: "sweep-7", Key: SpecKey(spec), Spec: spec,
		Scenarios: len(part.Keys), Submitted: time.Now().UTC(),
	}}
	for _, idx := range group0 {
		recs = append(recs, &journal.ScenarioDone{Sweep: "sweep-7", Index: idx, Result: ref.Results[idx]})
	}
	if err := jl.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	runner2 := &scenario.Runner{Workers: 1}
	svc2, err := New(Config{Runner: runner2, Journal: jl2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown()
	stats, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 || stats.ReusedResults != len(group0) {
		t.Errorf("stats = %+v, want 1 resumed reusing %d results", stats, len(group0))
	}
	sw, ok := svc2.Get("sweep-7")
	if !ok {
		t.Fatal("resumed sweep not registered")
	}
	waitDone(t, sw)
	res, err := sw.Results()
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if got, want := digestsOf(res), digestsOf(ref); !equalStrings(got, want) {
		t.Errorf("resumed digests %v != reference %v", got, want)
	}
	if got, want := tablesJSON(t, res), tablesJSON(t, ref); got != want {
		t.Errorf("resumed tables differ from reference")
	}
	// Exactly the missing simulations re-executed: group0's simulation
	// came from the journal.
	wantMisses := part.Simulations - 1
	if misses := runner2.CacheStats().Misses; misses != wantMisses {
		t.Errorf("memo misses = %d, want %d (journaled results must not re-simulate)", misses, wantMisses)
	}
	// The restored ID counter continues past the journaled sweep.
	other := crashSpec()
	other.Seed = 99
	fresh, _, err := svc2.Submit(ctx, other, false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "sweep-8" {
		t.Errorf("next ID after recovering sweep-7 = %s, want sweep-8", fresh.ID)
	}
	waitDone(t, fresh)
}

// TestDurableDrainInterruptsAndResumes: a sweep still queued when the
// drain deadline passes is journaled as interrupted — not canceled — and
// the next recovery resumes it to done.
func TestDurableDrainInterruptsAndResumes(t *testing.T) {
	ctx := context.Background()
	spec := crashSpec()
	dir := t.TempDir()

	jl1, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := New(Config{Runner: &scenario.Runner{Workers: 1}, Journal: jl1, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only executor slot so the sweep is pinned pending —
	// deterministically in flight when the drain deadline passes.
	svc1.sem <- struct{}{}
	sw, _, err := svc1.Submit(ctx, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if interrupted := svc1.Drain(expired); interrupted != 1 {
		t.Fatalf("Drain interrupted %d sweeps, want 1", interrupted)
	}
	waitDone(t, sw)
	if st := sw.state(); st != StateCanceled {
		t.Fatalf("drained sweep state = %s, want canceled", st)
	}
	// Draining a shut-down service refuses new submissions.
	if _, _, err := svc1.Submit(ctx, spec, false); !errors.Is(err, ErrShutdown) {
		t.Errorf("Submit after Drain = %v, want ErrShutdown", err)
	}
	jl1.Close()

	// The terminal record must say interrupted, so recovery resumes
	// instead of honouring a cancellation.
	jl2, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	var terminals []string
	if err := jl2.Replay(func(rec journal.Record) error {
		if term, ok := rec.(*journal.SweepTerminal); ok {
			terminals = append(terminals, term.State)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(terminals) != 1 || terminals[0] != journal.TerminalInterrupted {
		t.Fatalf("journaled terminals = %v, want [interrupted]", terminals)
	}

	svc2, err := New(Config{Runner: &scenario.Runner{Workers: 1}, Journal: jl2, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown()
	stats, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 {
		t.Fatalf("stats = %+v, want the interrupted sweep resumed", stats)
	}
	sw2, ok := svc2.Get(sw.ID)
	if !ok {
		t.Fatal("interrupted sweep not re-registered")
	}
	waitDone(t, sw2)
	if st := sw2.state(); st != StateDone {
		res, rerr := sw2.Results()
		t.Fatalf("resumed sweep state = %s (res=%v err=%v), want done", st, res, rerr)
	}
}

// TestSubmitShedsWhenSaturated: past MaxPending queued sweeps, new
// distinct submissions shed with 429 + Retry-After while dedup joins
// keep working; the queue drains and submissions flow again.
func TestSubmitShedsWhenSaturated(t *testing.T) {
	ctx := context.Background()
	block := make(chan struct{})
	run := func(ctx context.Context, spec scenario.Spec, progress func(done, total int)) (*scenario.SweepResults, error) {
		select {
		case <-block:
			return &scenario.SweepResults{Spec: spec}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	svc, srv := newTestServer(t, Config{Run: run, MaxConcurrent: 1, MaxPending: 1})
	defer close(block)

	specN := func(seed uint64) scenario.Spec {
		s := smallSpec()
		s.Seed = seed
		return s
	}
	// First sweep takes the slot, second queues.
	if _, _, err := svc.Submit(ctx, specN(1), false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Executing != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first sweep never took the executor slot")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := svc.Submit(ctx, specN(2), false); err != nil {
		t.Fatal(err)
	}
	// Third distinct sweep is shed.
	_, _, err := svc.Submit(ctx, specN(3), false)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("saturated Submit = %v, want *OverloadError", err)
	}
	if oe.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", oe.RetryAfter)
	}
	// A dedup join of the queued sweep is exempt from shedding.
	if _, joined, err := svc.Submit(ctx, specN(2), false); err != nil || !joined {
		t.Errorf("dedup join under saturation = (joined=%v, %v), want join", joined, err)
	}
	// Over HTTP the shed answers 429 with a Retry-After header.
	resp := postSweep(t, srv.URL+"/v1/sweeps", specN(4))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed HTTP status = %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", resp.Header.Get("Retry-After"))
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code != api.ErrOverloaded {
		t.Errorf("shed envelope = (%+v, %v), want code overloaded", env, err)
	}
}

// TestDurableRetentionCompaction: finally-terminal sweeps beyond the
// retention bound lose their journal records (segment-granularly), while
// retained sweeps survive replay and recovery.
func TestDurableRetentionCompaction(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// Tiny segments so each sweep's records seal quickly and dead
	// segments actually unlink.
	jl, err := journal.Open(dir, journal.Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Runner: &scenario.Runner{Workers: 1}, Journal: jl, Retention: 1, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		spec := crashSpec()
		spec.Seed = seed
		sw, _, err := svc.Submit(ctx, spec, false)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, sw)
		if st := sw.state(); st != StateDone {
			t.Fatalf("sweep seed %d state = %s", seed, st)
		}
	}
	svc.Shutdown()
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	bySweep := map[string]int{}
	if err := jl2.Replay(func(rec journal.Record) error {
		bySweep[rec.SweepID()]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bySweep["sweep-1"] != 0 {
		t.Errorf("sweep-1 still has %d journal records past retention", bySweep["sweep-1"])
	}
	if bySweep["sweep-3"] == 0 {
		t.Error("retained sweep-3 lost its journal records")
	}
	// Recovery of the compacted journal restores only retained sweeps.
	svc2, err := New(Config{Runner: &scenario.Runner{Workers: 1}, Journal: jl2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown()
	stats, err := svc2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := svc2.Get("sweep-1"); ok {
		t.Error("compacted-away sweep-1 reappeared after recovery")
	}
	if _, ok := svc2.Get("sweep-3"); !ok {
		t.Errorf("retained sweep-3 missing after recovery (stats %+v)", stats)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"github.com/greenhpc/archertwin/internal/scenario"
)

// Regression for the warmup_days=-1 sentinel: the service canonicalises
// the spec once and the Runner defaults it again; the sentinel must
// survive both passes so the served sweep measures the same window (and
// produces the same digest) as a direct run of the same JSON spec.
func TestServerWarmupSentinelDigestIdentity(t *testing.T) {
	_, srv := newTestServer(t, Config{Runner: &scenario.Runner{Workers: 1}})
	spec := scenario.Spec{Nodes: 32, Days: 2, WarmupDays: -1}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/sweeps?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p ResultsPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	direct, err := (&scenario.Runner{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Results[0].SimDigest != direct.Results[0].SimDigest {
		t.Fatalf("served digest %s != direct %s", p.Results[0].SimDigest, direct.Results[0].SimDigest)
	}
}

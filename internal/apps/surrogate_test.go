package apps

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

func surrogateApp() *App {
	return &App{
		Name:       "climate-model",
		Kernel:     roofline.Kernel{ComputeFraction: 0.3},
		ActCore:    0.6,
		ActUncore:  0.9,
		RefNodes:   32,
		RefRuntime: 12 * time.Hour,
	}
}

func goodSurrogate(spec *cpu.Spec, app *App) Surrogate {
	return Surrogate{
		Name:            "learned-emulator",
		TrainingEnergy:  TrainingEnergyFromRuns(spec, app, spec.DefaultSetting(), cpu.PowerDeterminism, 200),
		SpeedupFactor:   50,
		NodeFactor:      0.25,
		CoveredFraction: 0.8,
	}
}

func TestSurrogateValidate(t *testing.T) {
	s := spec()
	app := surrogateApp()
	if err := goodSurrogate(s, app).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Surrogate{
		{Name: "", SpeedupFactor: 2, NodeFactor: 1, CoveredFraction: 1},
		{Name: "x", SpeedupFactor: 1, NodeFactor: 1, CoveredFraction: 1},
		{Name: "x", SpeedupFactor: 2, NodeFactor: 0, CoveredFraction: 1},
		{Name: "x", SpeedupFactor: 2, NodeFactor: 2, CoveredFraction: 1},
		{Name: "x", SpeedupFactor: 2, NodeFactor: 1, CoveredFraction: 0},
		{Name: "x", TrainingEnergy: units.Joules(-1), SpeedupFactor: 2, NodeFactor: 1, CoveredFraction: 1},
	}
	for i, sg := range bad {
		if err := sg.Validate(); err == nil {
			t.Errorf("bad surrogate %d accepted", i)
		}
	}
}

func TestRunEnergyScalesWithNodes(t *testing.T) {
	s := spec()
	app := surrogateApp()
	e32 := RunEnergy(s, app, s.DefaultSetting(), cpu.PowerDeterminism)
	app1 := *app
	app1.RefNodes = 1
	e1 := RunEnergy(s, &app1, s.DefaultSetting(), cpu.PowerDeterminism)
	if math.Abs(e32.Joules()/e1.Joules()-32) > 1e-9 {
		t.Fatalf("energy ratio = %v, want 32", e32.Joules()/e1.Joules())
	}
	// Zero RefNodes treated as 1.
	app0 := *app
	app0.RefNodes = 0
	if RunEnergy(s, &app0, s.DefaultSetting(), cpu.PowerDeterminism) != e1 {
		t.Fatal("zero-node run energy wrong")
	}
}

func TestSurrogateRunEnergyReduces(t *testing.T) {
	s := spec()
	app := surrogateApp()
	sg := goodSurrogate(s, app)
	conv := RunEnergy(s, app, s.DefaultSetting(), cpu.PowerDeterminism)
	sur, err := SurrogateRunEnergy(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism)
	if err != nil {
		t.Fatal(err)
	}
	// 20% uncovered + 80% * (0.25/50): ~20.4% of the conventional energy.
	want := conv.Joules() * (0.2 + 0.8*0.25/50)
	if math.Abs(sur.Joules()-want) > 1e-6*want {
		t.Fatalf("surrogate energy = %v, want %v", sur.Joules(), want)
	}
}

func TestBreakEvenRuns(t *testing.T) {
	s := spec()
	app := surrogateApp()
	sg := goodSurrogate(s, app)
	n, err := BreakEvenRuns(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism)
	if err != nil {
		t.Fatal(err)
	}
	// Training = 200 conventional runs; each run saves ~79.6% -> break-even
	// around 200/0.796 ~ 252 runs.
	if n < 240 || n > 265 {
		t.Fatalf("break-even = %d runs, want ~252", n)
	}
	// A marginal surrogate (valid parameters always save *something*) has a
	// correspondingly enormous break-even.
	marginal := sg
	marginal.SpeedupFactor = 1.01
	marginal.NodeFactor = 1.0
	marginal.CoveredFraction = 0.01
	nm, err := BreakEvenRuns(s, app, marginal, s.DefaultSetting(), cpu.PowerDeterminism)
	if err != nil {
		t.Fatal(err)
	}
	if nm < 100*n {
		t.Fatalf("marginal break-even = %d, expected orders of magnitude above %d", nm, n)
	}
	// Invalid parameters error.
	bad := sg
	bad.SpeedupFactor = 0.5
	if _, err := BreakEvenRuns(s, app, bad, s.DefaultSetting(), cpu.PowerDeterminism); err == nil {
		t.Fatal("invalid surrogate accepted")
	}
}

func TestCompareEmissions(t *testing.T) {
	s := spec()
	app := surrogateApp()
	sg := goodSurrogate(s, app)
	grid := units.GramsPerKWh(200)

	// Below break-even the surrogate loses; above it wins.
	below, err := CompareEmissions(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism, 100, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	if below.Saving.Grams() >= 0 {
		t.Fatalf("surrogate won at 100 runs: %+v", below)
	}
	above, err := CompareEmissions(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism, 1000, grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	if above.Saving.Grams() <= 0 {
		t.Fatalf("surrogate lost at 1000 runs: %+v", above)
	}
	if math.Abs(above.Saving.Grams()-(above.Conventional.Grams()-above.Surrogate.Grams())) > 1 {
		t.Fatal("saving inconsistent")
	}
}

func TestCompareEmissionsCleanTrainingWindow(t *testing.T) {
	// Training in a clean-grid window (25 g/kWh) vs the production grid
	// (250 g/kWh) shifts the emissions break-even well below the energy
	// break-even — the scheduling lever the future-work discussion raises.
	s := spec()
	app := surrogateApp()
	sg := goodSurrogate(s, app)
	dirty := units.GramsPerKWh(250)
	clean := units.GramsPerKWh(25)
	runs := 120 // below the ~252-run energy break-even

	sameGrid, err := CompareEmissions(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism, runs, dirty, dirty)
	if err != nil {
		t.Fatal(err)
	}
	cleanTrain, err := CompareEmissions(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism, runs, clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if sameGrid.Saving.Grams() >= 0 {
		t.Fatal("expected loss when training on the dirty grid below break-even")
	}
	if cleanTrain.Saving.Grams() <= 0 {
		t.Fatal("expected win when training in the clean window")
	}
}

func TestCompareEmissionsErrors(t *testing.T) {
	s := spec()
	app := surrogateApp()
	sg := goodSurrogate(s, app)
	if _, err := CompareEmissions(s, app, sg, s.DefaultSetting(), cpu.PowerDeterminism, -1,
		units.GramsPerKWh(100), units.GramsPerKWh(100)); err == nil {
		t.Fatal("negative runs accepted")
	}
	bad := sg
	bad.SpeedupFactor = 0.5
	if _, err := CompareEmissions(s, app, bad, s.DefaultSetting(), cpu.PowerDeterminism, 10,
		units.GramsPerKWh(100), units.GramsPerKWh(100)); err == nil {
		t.Fatal("invalid surrogate accepted")
	}
}

// Package apps holds the application model: each application is a roofline
// kernel (frequency sensitivity) plus a pair of power activity factors
// (core-dynamic and uncore/memory), together with catalogue metadata.
//
// The eight applications named in the paper are calibrated analytically
// from the published Table 3/4 perf and energy ratios (see calibrate.go);
// seven synthetic fleet classes represent the broader ARCHER2 workload mix
// by research area and are calibrated once, as a group, against the
// facility's baseline power draw.
package apps

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

// App is one application (or synthetic application class).
type App struct {
	// Name identifies the application/benchmark, e.g. "LAMMPS Ethanol".
	Name string
	// Area is the research area, e.g. "biomolecular".
	Area string

	// Kernel is the analytic frequency-sensitivity model (always
	// populated — calibration produces it from the paper's tables).
	Kernel roofline.Kernel
	// Perf, when non-nil, overrides Kernel as the frequency-response
	// model (a measured roofline.Table, typically). The uniform per-mode
	// performance factor and the sampled per-die factors stay outside
	// the frequency model either way, so swapping implementations never
	// double-counts mode effects. Nil means the scalar kernel — the
	// default path, byte-identical to the pre-PerfModel behaviour.
	Perf roofline.PerfModel
	// ActCore is the core-dynamic activity factor (may exceed 1: the
	// Table 2 "loaded" figure is a typical value, not a cap, and codes
	// like Nektar++ drive packages well above it under boost).
	ActCore float64
	// ActUncore is the memory/uncore activity factor.
	ActUncore float64

	// RefNodes is the node count of the paper's benchmark configuration
	// (0 for fleet classes, which draw sizes from a distribution).
	RefNodes int
	// RefRuntime is the benchmark runtime at the reference operating point
	// (boost frequency, Power Determinism). Synthetic but plausible; only
	// ratios matter for the reproduction.
	RefRuntime time.Duration
}

// Validate checks the app parameters.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("apps: unnamed app")
	}
	if err := a.Kernel.Validate(); err != nil {
		return fmt.Errorf("apps: %s: %w", a.Name, err)
	}
	if a.Perf != nil {
		if err := a.Perf.Validate(); err != nil {
			return fmt.Errorf("apps: %s: %w", a.Name, err)
		}
	}
	if a.ActCore < 0 || a.ActUncore < 0 {
		return fmt.Errorf("apps: %s: negative activity", a.Name)
	}
	return nil
}

// Activity returns the node power activity of this app.
func (a *App) Activity() cpu.Activity {
	return cpu.Activity{Core: a.ActCore, Uncore: a.ActUncore}
}

// Runtime returns the wall-clock runtime of a job with reference runtime
// base, run at the given setting and mode (fleet-expectation perf factor).
func (a *App) Runtime(spec *cpu.Spec, base time.Duration, fs cpu.FreqSetting, m cpu.Mode) time.Duration {
	mult := a.TimeMultiplier(spec, fs, m)
	return time.Duration(float64(base) * mult)
}

// TimeMultiplier returns the runtime multiplier at (setting, mode) relative
// to the reference point (boost, Power Determinism).
func (a *App) TimeMultiplier(spec *cpu.Spec, fs cpu.FreqSetting, m cpu.Mode) float64 {
	return a.FreqMultiplier(spec, fs, m) / spec.MeanPerfFactor(m)
}

// FreqMultiplier returns the frequency-response half of the runtime
// multiplier at (setting, mode) — the active perf model's response,
// without the per-mode performance factor (the scheduler divides by the
// sampled per-die factor instead of the fleet mean). The nil-Perf branch
// is the scalar kernel, dispatched without interface boxing so the
// default path allocates nothing and computes exactly what it always
// did.
func (a *App) FreqMultiplier(spec *cpu.Spec, fs cpu.FreqSetting, m cpu.Mode) float64 {
	f := spec.EffectiveFrequency(fs)
	if a.Perf != nil {
		return a.Perf.Multiplier(f, spec.BoostFreq, roofline.Mode(m))
	}
	return a.Kernel.TimeMultiplier(f, spec.BoostFreq)
}

// NodePower returns the fleet-expectation node power while running this app
// at the given setting and mode.
func (a *App) NodePower(spec *cpu.Spec, fs cpu.FreqSetting, m cpu.Mode) units.Power {
	return node.ExpectedPower(spec, fs, a.Activity(), m)
}

// NodeEnergy returns the expected per-node energy of one run of a job with
// reference runtime base at (setting, mode).
func (a *App) NodeEnergy(spec *cpu.Spec, base time.Duration, fs cpu.FreqSetting, m cpu.Mode) units.Energy {
	return a.NodePower(spec, fs, m).EnergyOver(a.Runtime(spec, base, fs, m))
}

// PerfRatio returns performance at (fsB, mB) relative to (fsA, mA); the
// paper's tables use A = the pre-change configuration.
func (a *App) PerfRatio(spec *cpu.Spec, fsA cpu.FreqSetting, mA cpu.Mode, fsB cpu.FreqSetting, mB cpu.Mode) float64 {
	return a.TimeMultiplier(spec, fsA, mA) / a.TimeMultiplier(spec, fsB, mB)
}

// EnergyRatio returns per-node job energy at (fsB, mB) relative to
// (fsA, mA).
func (a *App) EnergyRatio(spec *cpu.Spec, fsA cpu.FreqSetting, mA cpu.Mode, fsB cpu.FreqSetting, mB cpu.Mode) float64 {
	base := time.Hour // cancels in the ratio
	ea := a.NodeEnergy(spec, base, fsA, mA)
	eb := a.NodeEnergy(spec, base, fsB, mB)
	return eb.Joules() / ea.Joules()
}

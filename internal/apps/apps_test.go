package apps

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

func spec() *cpu.Spec { return cpu.EPYC7742() }

func catalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := NewCatalog(spec())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTable4RoundTrip is the core calibration check: every published
// Table 4 row must be reproduced exactly by the calibrated app under the
// power/perf model (analytic inversion followed by forward evaluation).
func TestTable4RoundTrip(t *testing.T) {
	s := spec()
	c := catalog(t)
	def, cap := s.DefaultSetting(), s.CappedSetting()
	m := cpu.PerformanceDeterminism
	for i, row := range Table4Paper() {
		app := c.Table4[i]
		gotPerf := app.PerfRatio(s, def, m, cap, m)
		gotEnergy := app.EnergyRatio(s, def, m, cap, m)
		if math.Abs(gotPerf-row.Perf) > 1e-6 {
			t.Errorf("%s: perf ratio %v, paper %v", row.Name, gotPerf, row.Perf)
		}
		if math.Abs(gotEnergy-row.Energy) > 1e-6 {
			t.Errorf("%s: energy ratio %v, paper %v", row.Name, gotEnergy, row.Energy)
		}
	}
}

// TestTable3RoundTrip: the mode-switch rows must reproduce their published
// energy ratios; perf ratio is the uniform determinism factor (~0.99).
func TestTable3RoundTrip(t *testing.T) {
	s := spec()
	c := catalog(t)
	def := s.DefaultSetting()
	for i, row := range Table3Paper() {
		app := c.Table3[i]
		gotPerf := app.PerfRatio(s, def, cpu.PowerDeterminism, def, cpu.PerformanceDeterminism)
		gotEnergy := app.EnergyRatio(s, def, cpu.PowerDeterminism, def, cpu.PerformanceDeterminism)
		if math.Abs(gotPerf-s.PerfDetPerfFactor) > 1e-9 {
			t.Errorf("%s: perf ratio %v, want %v", row.Name, gotPerf, s.PerfDetPerfFactor)
		}
		// rho = e*r is matched exactly; with the uniform perf factor the
		// energy ratio lands within rounding of the published value.
		wantEnergy := row.Energy * row.Perf / s.PerfDetPerfFactor
		if math.Abs(gotEnergy-wantEnergy) > 1e-6 {
			t.Errorf("%s: energy ratio %v, want %v (paper %v)", row.Name, gotEnergy, wantEnergy, row.Energy)
		}
		if math.Abs(gotEnergy-row.Energy) > 0.02 {
			t.Errorf("%s: energy ratio %v too far from paper %v", row.Name, gotEnergy, row.Energy)
		}
	}
}

func TestCalibratedParametersPlausible(t *testing.T) {
	c := catalog(t)
	for _, app := range c.All() {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if app.ActCore <= 0 || app.ActCore > 3 {
			t.Errorf("%s: core activity %v implausible", app.Name, app.ActCore)
		}
		// Node power at the stock setting should be within the physically
		// observed ARCHER2 band (~300 W to just under 1 kW/node; Nektar++
		// TGV is the hottest calibrated code at ~960 W in Power Determinism).
		p := app.NodePower(spec(), spec().DefaultSetting(), cpu.PowerDeterminism).Watts()
		if p < 300 || p > 1000 {
			t.Errorf("%s: node power %v W implausible", app.Name, p)
		}
	}
	// LAMMPS is the most compute-bound (perf 0.74); VASP the least.
	lammps := c.ByName("LAMMPS Ethanol")
	vasp := c.ByName("VASP CdTe")
	if lammps.Kernel.ComputeFraction <= vasp.Kernel.ComputeFraction {
		t.Errorf("compute fractions out of order: LAMMPS %v <= VASP %v",
			lammps.Kernel.ComputeFraction, vasp.Kernel.ComputeFraction)
	}
}

func TestByName(t *testing.T) {
	c := catalog(t)
	if c.ByName("VASP CdTe") == nil {
		t.Error("VASP CdTe missing")
	}
	if c.ByName("nonexistent") != nil {
		t.Error("unexpected app")
	}
	if len(c.All()) != 10 {
		t.Errorf("catalog size = %d, want 10", len(c.All()))
	}
}

func TestRuntimeScaling(t *testing.T) {
	s := spec()
	c := catalog(t)
	lammps := c.ByName("LAMMPS Ethanol")
	base := time.Hour
	ref := lammps.Runtime(s, base, s.DefaultSetting(), cpu.PowerDeterminism)
	if ref != base {
		t.Fatalf("reference runtime = %v, want %v", ref, base)
	}
	capped := lammps.Runtime(s, base, s.CappedSetting(), cpu.PowerDeterminism)
	wantMult := 1 / 0.74
	if math.Abs(float64(capped)/float64(base)-wantMult) > 0.01 {
		t.Fatalf("capped runtime multiplier = %v, want ~%v", float64(capped)/float64(base), wantMult)
	}
	// Performance determinism adds ~1%.
	pd := lammps.Runtime(s, base, s.DefaultSetting(), cpu.PerformanceDeterminism)
	if math.Abs(float64(pd)/float64(base)-1/0.99) > 1e-6 {
		t.Fatalf("perf-det runtime multiplier = %v", float64(pd)/float64(base))
	}
}

func TestCalibrateFrequencyErrors(t *testing.T) {
	s := spec()
	cases := []struct {
		name    string
		r, e, u float64
	}{
		{"perf too low", 0.60, 0.9, 0.3},    // below compute-bound floor
		{"energy too low", 0.95, 0.45, 0.3}, // power ratio below dyn floor
		{"no reduction", 0.99, 1.05, 0.3},   // rho >= 1
		{"bad r", 0, 0.9, 0.3},
	}
	for _, c := range cases {
		if _, _, err := CalibrateFrequency(s, c.r, c.e, c.u, s.CappedSetting(), cpu.PerformanceDeterminism); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCalibrateModeSwitchErrors(t *testing.T) {
	s := spec()
	if _, err := CalibrateModeSwitch(s, 0.99, 0.70, 0.3); err == nil {
		t.Error("infeasible energy ratio accepted")
	}
	if _, err := CalibrateModeSwitch(s, 0.99, 1.10, 0.3); err == nil {
		t.Error("no-reduction ratio accepted")
	}
	if _, err := CalibrateModeSwitch(s, -1, 0.9, 0.3); err == nil {
		t.Error("negative perf ratio accepted")
	}
}

func TestFleetMixShares(t *testing.T) {
	mix := FleetMix()
	if len(mix) != 7 {
		t.Fatalf("fleet classes = %d, want 7", len(mix))
	}
	total := 0.0
	for _, wa := range mix {
		total += wa.Weight
		if err := wa.App.Validate(); err != nil {
			t.Errorf("%s: %v", wa.App.Name, err)
		}
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
	// Materials science is the largest area, per the paper.
	if mix[0].App.Name != "materials-dft" || mix[0].Weight < 0.25 {
		t.Errorf("materials share = %v", mix[0].Weight)
	}
}

func TestCalibrateMixToBusyPower(t *testing.T) {
	s := spec()
	target := units.Watts(540) // fleet busy-node mean behind the 3220 kW baseline
	mix, k, err := CalibrateMixToBusyPower(s, FleetMix(), s.DefaultSetting(), cpu.PowerDeterminism, target)
	if err != nil {
		t.Fatal(err)
	}
	got := ExpectedBusyNodePower(s, mix, s.DefaultSetting(), cpu.PowerDeterminism)
	if math.Abs(got.Watts()-540) > 0.5 {
		t.Fatalf("calibrated busy power = %v, want 540 W", got)
	}
	if k < 0.8 || k > 1.3 {
		t.Fatalf("activity scalar k = %v suspiciously far from 1 (class parameters off)", k)
	}
	// Original mix untouched (ScaleMixActivity copies; compare to the
	// catalogue's configured value).
	if FleetMix()[0].App.ActCore != FleetClasses()[0].Core {
		t.Fatal("calibration mutated the base mix")
	}
}

func TestCalibrateMixErrors(t *testing.T) {
	s := spec()
	if _, _, err := CalibrateMixToBusyPower(s, FleetMix(), s.DefaultSetting(), cpu.PowerDeterminism, units.Watts(100)); err == nil {
		t.Error("sub-idle target accepted")
	}
	if _, _, err := CalibrateMixToBusyPower(s, FleetMix(), s.DefaultSetting(), cpu.PowerDeterminism, units.Watts(5000)); err == nil {
		t.Error("unreachable target accepted")
	}
}

// TestFleetStepPredictions verifies the emergent fleet-level behaviour at
// the busy-node level: the calibrated mix must show a ~6-8% power drop from
// the BIOS change and a further ~17-20% from the frequency cap, consistent
// with the paper's 6.5% and 15% cabinet-level steps (cabinet numbers
// include idle nodes and switches, which dilute the busy-node drop).
func TestFleetStepPredictions(t *testing.T) {
	s := spec()
	mix, _, err := CalibrateMixToBusyPower(s, FleetMix(), s.DefaultSetting(), cpu.PowerDeterminism, units.Watts(540))
	if err != nil {
		t.Fatal(err)
	}
	pd := ExpectedBusyNodePower(s, mix, s.DefaultSetting(), cpu.PowerDeterminism).Watts()
	fd := ExpectedBusyNodePower(s, mix, s.DefaultSetting(), cpu.PerformanceDeterminism).Watts()
	capFd := ExpectedBusyNodePower(s, mix, s.CappedSetting(), cpu.PerformanceDeterminism).Watts()

	biosDrop := 1 - fd/pd
	if biosDrop < 0.05 || biosDrop > 0.11 {
		t.Errorf("BIOS busy-node drop = %.3f, want ~0.07", biosDrop)
	}
	freqDrop := 1 - capFd/fd
	if freqDrop < 0.13 || freqDrop > 0.24 {
		t.Errorf("frequency busy-node drop = %.3f, want ~0.18", freqDrop)
	}
}

func TestEnergyRatioUsesRuntime(t *testing.T) {
	// A purely memory-bound app under the frequency cap: power falls,
	// runtime is unchanged, so the energy ratio equals the power ratio.
	s := spec()
	app := &App{Name: "membound", Kernel: roofline.Kernel{ComputeFraction: 0},
		ActCore: 0.5, ActUncore: 1.0}
	m := cpu.PerformanceDeterminism
	def, capped := s.DefaultSetting(), s.CappedSetting()
	if r := app.PerfRatio(s, def, m, capped, m); math.Abs(r-1) > 1e-12 {
		t.Fatalf("memory-bound perf ratio = %v, want 1", r)
	}
	e := app.EnergyRatio(s, def, m, capped, m)
	powerRatio := app.NodePower(s, capped, m).Watts() / app.NodePower(s, def, m).Watts()
	if math.Abs(e-powerRatio) > 1e-9 {
		t.Fatalf("energy ratio %v != power ratio %v", e, powerRatio)
	}
	if e >= 1 {
		t.Fatalf("energy ratio %v not below 1", e)
	}

	// A fully compute-bound app: runtime stretches by fref/f while core
	// power falls by d(f); energy ratio = power ratio * time multiplier.
	cb := &App{Name: "compbound", Kernel: roofline.Kernel{ComputeFraction: 1},
		ActCore: 1.5, ActUncore: 0.1}
	e = cb.EnergyRatio(s, def, m, capped, m)
	pr := cb.NodePower(s, capped, m).Watts() / cb.NodePower(s, def, m).Watts()
	tm := cb.TimeMultiplier(s, capped, m) / cb.TimeMultiplier(s, def, m)
	if math.Abs(e-pr*tm) > 1e-9 {
		t.Fatalf("energy ratio %v != power*time %v", e, pr*tm)
	}
}

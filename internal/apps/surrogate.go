package apps

import (
	"fmt"
	"math"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/units"
)

// This file implements the paper's other stated future-work direction:
// "looking at the impact on energy and emissions efficiency of replacing
// parts of modelling applications by AI-based approaches" (paper §5).
//
// An AI surrogate trades a large one-off training energy cost for much
// cheaper inference-dominated production runs. Whether that trade pays
// off depends on how many production runs amortise the training — the
// break-even analysis below — and, for emissions, on the grid intensity
// at training vs production time.

// Surrogate describes an AI replacement for (part of) a simulation code.
type Surrogate struct {
	Name string
	// TrainingEnergy is the one-off energy cost of training the model.
	TrainingEnergy units.Energy
	// SpeedupFactor is how much faster a production run completes when the
	// surrogate replaces the simulated component (>1).
	SpeedupFactor float64
	// NodeFactor scales the node count of a production run (inference
	// typically needs far fewer nodes), in (0, 1].
	NodeFactor float64
	// CoveredFraction is the fraction of the original runtime the
	// surrogate replaces (the rest still runs conventionally), in (0, 1].
	CoveredFraction float64
}

// Validate checks the surrogate parameters.
func (s Surrogate) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("apps: unnamed surrogate")
	}
	if s.TrainingEnergy.Joules() < 0 {
		return fmt.Errorf("apps: surrogate %s: negative training energy", s.Name)
	}
	if s.SpeedupFactor <= 1 {
		return fmt.Errorf("apps: surrogate %s: speedup %v must exceed 1", s.Name, s.SpeedupFactor)
	}
	if s.NodeFactor <= 0 || s.NodeFactor > 1 {
		return fmt.Errorf("apps: surrogate %s: node factor %v outside (0,1]", s.Name, s.NodeFactor)
	}
	if s.CoveredFraction <= 0 || s.CoveredFraction > 1 {
		return fmt.Errorf("apps: surrogate %s: covered fraction %v outside (0,1]", s.Name, s.CoveredFraction)
	}
	return nil
}

// RunEnergy returns the per-run compute energy of app at (setting, mode)
// across its reference node count.
func RunEnergy(spec *cpu.Spec, app *App, fs cpu.FreqSetting, m cpu.Mode) units.Energy {
	perNode := app.NodeEnergy(spec, app.RefRuntime, fs, m)
	nodes := app.RefNodes
	if nodes <= 0 {
		nodes = 1
	}
	return perNode.Scale(float64(nodes))
}

// SurrogateRunEnergy returns the per-run energy with the surrogate in
// place: the covered fraction runs SpeedupFactor faster on NodeFactor of
// the nodes; the remainder is unchanged.
func SurrogateRunEnergy(spec *cpu.Spec, app *App, s Surrogate, fs cpu.FreqSetting, m cpu.Mode) (units.Energy, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	full := RunEnergy(spec, app, fs, m)
	covered := full.Scale(s.CoveredFraction)
	uncovered := full.Scale(1 - s.CoveredFraction)
	replaced := covered.Scale(s.NodeFactor / s.SpeedupFactor)
	return uncovered + replaced, nil
}

// BreakEvenRuns returns the number of production runs after which the
// surrogate's cumulative energy (training + cheaper runs) beats the
// conventional code, at the given operating point. It returns
// (0, error) if the surrogate saves no energy per run, and rounds up.
func BreakEvenRuns(spec *cpu.Spec, app *App, s Surrogate, fs cpu.FreqSetting, m cpu.Mode) (int, error) {
	conv := RunEnergy(spec, app, fs, m)
	sur, err := SurrogateRunEnergy(spec, app, s, fs, m)
	if err != nil {
		return 0, err
	}
	saving := conv.Joules() - sur.Joules()
	if saving <= 0 {
		return 0, fmt.Errorf("apps: surrogate %s saves no energy per run", s.Name)
	}
	return int(math.Ceil(s.TrainingEnergy.Joules() / saving)), nil
}

// SurrogateEmissions compares lifetime emissions of conventional vs
// surrogate operation over nRuns production runs, with training performed
// at trainCI and production at prodCI grid intensity (training can be
// scheduled into clean-grid windows — one of the operational levers the
// future-work discussion raises).
type SurrogateEmissions struct {
	Conventional units.Mass
	Surrogate    units.Mass
	// Saving = Conventional - Surrogate (negative if the surrogate loses).
	Saving units.Mass
}

// CompareEmissions computes the comparison.
func CompareEmissions(spec *cpu.Spec, app *App, s Surrogate, fs cpu.FreqSetting, m cpu.Mode,
	nRuns int, trainCI, prodCI units.CarbonIntensity) (SurrogateEmissions, error) {
	if nRuns < 0 {
		return SurrogateEmissions{}, fmt.Errorf("apps: negative run count")
	}
	sur, err := SurrogateRunEnergy(spec, app, s, fs, m)
	if err != nil {
		return SurrogateEmissions{}, err
	}
	conv := RunEnergy(spec, app, fs, m)
	convTotal := conv.Scale(float64(nRuns)).Emissions(prodCI)
	surTotal := units.Mass(s.TrainingEnergy.Emissions(trainCI).Grams() +
		sur.Scale(float64(nRuns)).Emissions(prodCI).Grams())
	return SurrogateEmissions{
		Conventional: convTotal,
		Surrogate:    surTotal,
		Saving:       units.Mass(convTotal.Grams() - surTotal.Grams()),
	}, nil
}

// TrainingEnergyFromRuns is a convenience for expressing training cost as
// a multiple of the conventional per-run energy ("training cost ~ 500
// production runs" is the natural unit practitioners quote).
func TrainingEnergyFromRuns(spec *cpu.Spec, app *App, fs cpu.FreqSetting, m cpu.Mode, runs float64) units.Energy {
	return RunEnergy(spec, app, fs, m).Scale(runs)
}

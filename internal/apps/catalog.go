package apps

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/roofline"
)

// Table4Row is one published row of the paper's Table 4: performance and
// energy ratios at 2.0 GHz versus 2.25 GHz + turbo (both measured after
// the BIOS change, i.e. in Performance Determinism mode).
type Table4Row struct {
	Name   string
	Area   string
	Nodes  int
	Perf   float64
	Energy float64
	// Uncore is the a-priori memory-system activity class for the code's
	// algorithm family (not published; see DESIGN.md §5).
	Uncore float64
}

// Table4Paper returns the published Table 4.
func Table4Paper() []Table4Row {
	return []Table4Row{
		{Name: "CASTEP Al Slab", Area: "materials", Nodes: 4, Perf: 0.93, Energy: 0.88, Uncore: 0.30},
		{Name: "CP2K H2O 2048", Area: "materials", Nodes: 4, Perf: 0.91, Energy: 0.93, Uncore: 0.30},
		{Name: "GROMACS 1400k", Area: "biomolecular", Nodes: 3, Perf: 0.83, Energy: 0.92, Uncore: 0.20},
		{Name: "LAMMPS Ethanol", Area: "biomolecular", Nodes: 4, Perf: 0.74, Energy: 0.92, Uncore: 0.20},
		{Name: "Nektar++ TGV 128 DoF", Area: "engineering", Nodes: 2, Perf: 0.80, Energy: 0.80, Uncore: 0.30},
		{Name: "ONETEP hBN-BP-hBN", Area: "materials", Nodes: 4, Perf: 0.92, Energy: 0.82, Uncore: 0.30},
		{Name: "VASP CdTe", Area: "materials", Nodes: 8, Perf: 0.95, Energy: 0.88, Uncore: 0.30},
	}
}

// Table3Row is one published row of the paper's Table 3: performance and
// energy ratios of Performance Determinism versus Power Determinism mode
// at the stock 2.25 GHz + turbo setting.
type Table3Row struct {
	Name   string
	Area   string
	Nodes  int
	Perf   float64
	Energy float64
	Uncore float64
	// ComputeFraction is the roofline parameter, taken from the same code's
	// Table 4 calibration where available (Table 3 contains no frequency
	// information from which to infer it).
	ComputeFraction float64
}

// Table3Paper returns the published Table 3. Compute fractions: CASTEP and
// VASP inherit their Table 4 siblings' inversions; OpenSBLI (structured-
// grid compressible CFD) is assigned a mid-range 0.55.
func Table3Paper() []Table3Row {
	return []Table3Row{
		{Name: "CASTEP Al Slab (16n)", Area: "materials", Nodes: 16, Perf: 0.99, Energy: 0.94, Uncore: 0.30, ComputeFraction: 0.188},
		{Name: "OpenSBLI TGV 1024^3", Area: "engineering", Nodes: 32, Perf: 1.00, Energy: 0.90, Uncore: 0.60, ComputeFraction: 0.55},
		{Name: "VASP TiO2", Area: "materials", Nodes: 32, Perf: 0.99, Energy: 0.93, Uncore: 0.30, ComputeFraction: 0.132},
	}
}

// Catalog is the calibrated application set.
type Catalog struct {
	// Table4 apps indexed in the paper's row order.
	Table4 []*App
	// Table3 apps indexed in the paper's row order.
	Table3 []*App
	byName map[string]*App
}

// NewCatalog calibrates all named applications against spec. It fails if
// any published row is infeasible under the hardware model — a consistency
// check between the paper's numbers and the twin's physics.
func NewCatalog(spec *cpu.Spec) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]*App)}
	refRuntimes := map[string]time.Duration{
		"CASTEP Al Slab":       45 * time.Minute,
		"CP2K H2O 2048":        70 * time.Minute,
		"GROMACS 1400k":        30 * time.Minute,
		"LAMMPS Ethanol":       40 * time.Minute,
		"Nektar++ TGV 128 DoF": 55 * time.Minute,
		"ONETEP hBN-BP-hBN":    80 * time.Minute,
		"VASP CdTe":            35 * time.Minute,
		"CASTEP Al Slab (16n)": 25 * time.Minute,
		"OpenSBLI TGV 1024^3":  60 * time.Minute,
		"VASP TiO2":            50 * time.Minute,
	}

	for _, row := range Table4Paper() {
		cf, ac, err := CalibrateFrequency(spec, row.Perf, row.Energy, row.Uncore,
			spec.CappedSetting(), cpu.PerformanceDeterminism)
		if err != nil {
			return nil, fmt.Errorf("apps: calibrating %s: %w", row.Name, err)
		}
		app := &App{
			Name:       row.Name,
			Area:       row.Area,
			Kernel:     roofline.Kernel{ComputeFraction: cf},
			ActCore:    ac,
			ActUncore:  row.Uncore,
			RefNodes:   row.Nodes,
			RefRuntime: refRuntimes[row.Name],
		}
		if err := app.Validate(); err != nil {
			return nil, err
		}
		c.Table4 = append(c.Table4, app)
		c.byName[app.Name] = app
	}

	for _, row := range Table3Paper() {
		ac, err := CalibrateModeSwitch(spec, row.Perf, row.Energy, row.Uncore)
		if err != nil {
			return nil, fmt.Errorf("apps: calibrating %s: %w", row.Name, err)
		}
		app := &App{
			Name:       row.Name,
			Area:       row.Area,
			Kernel:     roofline.Kernel{ComputeFraction: row.ComputeFraction},
			ActCore:    ac,
			ActUncore:  row.Uncore,
			RefNodes:   row.Nodes,
			RefRuntime: refRuntimes[row.Name],
		}
		if err := app.Validate(); err != nil {
			return nil, err
		}
		c.Table3 = append(c.Table3, app)
		c.byName[app.Name] = app
	}
	return c, nil
}

// ByName returns a calibrated app by its paper name, or nil.
func (c *Catalog) ByName(name string) *App { return c.byName[name] }

// All returns every calibrated app.
func (c *Catalog) All() []*App {
	out := make([]*App, 0, len(c.Table4)+len(c.Table3))
	out = append(out, c.Table4...)
	out = append(out, c.Table3...)
	return out
}

// FleetClass describes one synthetic research-area class of the ARCHER2
// workload mix (paper §1.1 lists the major research areas). The activity
// and kernel parameters are plausible per-family values whose weighted
// aggregate is calibrated once against the measured 3,220 kW baseline.
type FleetClass struct {
	Name   string
	Share  float64 // share of fleet node-hours
	C      float64 // roofline compute fraction
	Core   float64 // core-dynamic activity
	Uncore float64 // uncore/memory activity
	// Job-size and runtime distribution parameters (lognormal).
	NodesMedian   float64
	NodesSigma    float64
	RuntimeMedian time.Duration
	RuntimeSigma  float64
}

// FleetClasses returns the ARCHER2-like workload mix by research area.
func FleetClasses() []FleetClass {
	return []FleetClass{
		{Name: "materials-dft", Share: 0.30, C: 0.20, Core: 0.62, Uncore: 0.28,
			NodesMedian: 4, NodesSigma: 0.9, RuntimeMedian: 8 * time.Hour, RuntimeSigma: 0.8},
		{Name: "climate-ocean", Share: 0.20, C: 0.15, Core: 0.52, Uncore: 0.80,
			NodesMedian: 48, NodesSigma: 0.8, RuntimeMedian: 12 * time.Hour, RuntimeSigma: 0.6},
		{Name: "biomolecular-md", Share: 0.12, C: 0.65, Core: 1.20, Uncore: 0.18,
			NodesMedian: 3, NodesSigma: 0.7, RuntimeMedian: 10 * time.Hour, RuntimeSigma: 0.7},
		{Name: "engineering-cfd", Share: 0.15, C: 0.60, Core: 1.15, Uncore: 0.55,
			NodesMedian: 32, NodesSigma: 0.9, RuntimeMedian: 9 * time.Hour, RuntimeSigma: 0.7},
		{Name: "mineral-physics", Share: 0.08, C: 0.25, Core: 0.72, Uncore: 0.28,
			NodesMedian: 8, NodesSigma: 0.8, RuntimeMedian: 7 * time.Hour, RuntimeSigma: 0.8},
		{Name: "seismology", Share: 0.07, C: 0.30, Core: 0.58, Uncore: 0.72,
			NodesMedian: 24, NodesSigma: 0.8, RuntimeMedian: 6 * time.Hour, RuntimeSigma: 0.8},
		{Name: "plasma-physics", Share: 0.08, C: 0.55, Core: 1.05, Uncore: 0.42,
			NodesMedian: 16, NodesSigma: 0.9, RuntimeMedian: 8 * time.Hour, RuntimeSigma: 0.7},
	}
}

// FleetMix converts the fleet classes into weighted App models.
func FleetMix() []WeightedApp {
	classes := FleetClasses()
	out := make([]WeightedApp, len(classes))
	for i, fc := range classes {
		out[i] = WeightedApp{
			App: &App{
				Name:       fc.Name,
				Area:       fc.Name,
				Kernel:     roofline.Kernel{ComputeFraction: fc.C},
				ActCore:    fc.Core,
				ActUncore:  fc.Uncore,
				RefRuntime: fc.RuntimeMedian,
			},
			Weight: fc.Share,
		}
	}
	return out
}

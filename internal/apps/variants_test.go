package apps

import (
	"math"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

func baseApp() *App {
	return &App{
		Name:       "base",
		Kernel:     roofline.Kernel{ComputeFraction: 0.50},
		ActCore:    0.8,
		ActUncore:  0.4,
		RefNodes:   4,
		RefRuntime: time.Hour,
	}
}

func TestVariantValidate(t *testing.T) {
	for _, v := range CommonVariants() {
		if err := v.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
	bad := []Variant{
		{Name: "", Speedup: 1},
		{Name: "x", Speedup: 0},
		{Name: "x", Speedup: 1, CoreActivityFactor: -1},
	}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("%+v accepted", v)
		}
	}
}

func TestVariantApply(t *testing.T) {
	app := baseApp()
	v := Variant{Name: "simd", Speedup: 1.25, ComputeShift: -0.1, CoreActivityFactor: 1.2}
	out, err := v.Apply(app)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kernel.ComputeFraction != 0.40 {
		t.Errorf("compute fraction = %v", out.Kernel.ComputeFraction)
	}
	if math.Abs(out.ActCore-0.96) > 1e-12 {
		t.Errorf("core activity = %v", out.ActCore)
	}
	if out.RefRuntime != time.Duration(float64(time.Hour)/1.25) {
		t.Errorf("runtime = %v", out.RefRuntime)
	}
	// Base untouched.
	if app.ActCore != 0.8 || app.RefRuntime != time.Hour {
		t.Fatal("Apply mutated the base app")
	}
	// Clamping.
	ext := Variant{Name: "extreme", Speedup: 1, ComputeShift: +0.9, CoreActivityFactor: 1}
	out, err = ext.Apply(app)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kernel.ComputeFraction != 0.98 {
		t.Errorf("clamped fraction = %v", out.Kernel.ComputeFraction)
	}
}

func TestVariantApplyInvalid(t *testing.T) {
	if _, err := (Variant{Name: "", Speedup: 1}).Apply(baseApp()); err == nil {
		t.Fatal("invalid variant applied")
	}
}

func TestSweepVariantsShape(t *testing.T) {
	s := spec()
	app := baseApp()
	settings := []cpu.FreqSetting{s.CappedSetting(), s.DefaultSetting()}
	pts, err := SweepVariants(s, app, CommonVariants(), settings, cpu.PerformanceDeterminism)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(CommonVariants())*len(settings) {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := func(vName string, boost bool) VariantPoint {
		for _, p := range pts {
			if p.Variant.Name == vName && p.Setting.Boost == boost {
				return p
			}
		}
		t.Fatalf("missing point %s boost=%v", vName, boost)
		return VariantPoint{}
	}

	// The production build at the reference setting is the identity point.
	ref := byKey("production -O3", true)
	if math.Abs(ref.PerfVsBase-1) > 1e-9 || math.Abs(ref.EnergyVsBase-1) > 1e-9 {
		t.Fatalf("reference point not identity: %+v", ref)
	}
	// The SIMD build is faster than base at the same setting...
	simd := byKey("vendor libs + wide SIMD", true)
	if simd.PerfVsBase <= 1 {
		t.Errorf("SIMD perf vs base = %v", simd.PerfVsBase)
	}
	// ...and draws more node power.
	if simd.NodePower.Watts() <= ref.NodePower.Watts() {
		t.Errorf("SIMD power %v not above base %v", simd.NodePower, ref.NodePower)
	}
	// The scalar build is slower.
	scalar := byKey("portable -O2 scalar", true)
	if scalar.PerfVsBase >= 1 {
		t.Errorf("scalar perf vs base = %v", scalar.PerfVsBase)
	}
	// Capping hurts the SIMD build's relative perf less than its own
	// reference? No: the SIMD build became MORE memory bound (negative
	// compute shift), so capping costs it less than it costs the scalar
	// build, which became more compute bound.
	simdCap := byKey("vendor libs + wide SIMD", false)
	scalarCap := byKey("portable -O2 scalar", false)
	simdLoss := 1 - simdCap.PerfVsBase/simd.PerfVsBase
	scalarLoss := 1 - scalarCap.PerfVsBase/scalar.PerfVsBase
	if simdLoss >= scalarLoss {
		t.Errorf("cap losses: simd %v >= scalar %v (compute-shift inverted?)", simdLoss, scalarLoss)
	}
}

func TestSweepVariantsErrors(t *testing.T) {
	s := spec()
	app := baseApp()
	app.RefRuntime = 0
	if _, err := SweepVariants(s, app, CommonVariants(), []cpu.FreqSetting{s.DefaultSetting()}, cpu.PowerDeterminism); err == nil {
		t.Error("zero-runtime base accepted")
	}
	bad := []cpu.FreqSetting{{Base: units.Gigahertz(9)}}
	if _, err := SweepVariants(s, baseApp(), CommonVariants(), bad, cpu.PowerDeterminism); err == nil {
		t.Error("invalid setting accepted")
	}
}

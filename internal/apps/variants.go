package apps

import (
	"fmt"
	"time"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/units"
)

// This file implements one of the paper's stated future-work directions:
// "investigating the impact of compiler and library choices on the energy
// efficiency of application benchmarks at different CPU frequencies"
// (paper §5).
//
// A build variant changes three things about a code: how fast it runs at
// the reference point (vectorisation, better libraries), how
// compute-bound it is (heavier vector units retire the compute phase
// faster, shifting the balance toward memory), and how hard it drives the
// core power envelope (wide SIMD is hot). The Variant type captures those
// axes and derives a new calibrated App, so the whole analysis stack
// (frequency sweeps, fleet simulation, emissions accounting) applies to
// build variants unchanged.

// Variant describes a compiler/library build of an application.
type Variant struct {
	// Name identifies the build, e.g. "gcc -O3 + AVX2".
	Name string
	// Speedup is the runtime speedup at the reference operating point
	// relative to the base build (>1 = faster).
	Speedup float64
	// ComputeShift is added to the base compute-bound fraction: faster
	// compute phases (more vectorisation) make the remainder more
	// memory-dominated, so aggressive builds carry negative shifts.
	ComputeShift float64
	// CoreActivityFactor multiplies the base core-dynamic activity: wide
	// SIMD units draw more power per cycle.
	CoreActivityFactor float64
}

// CommonVariants returns a representative build matrix for an HPC code:
// a conservative scalar build, the production default, and an
// aggressively vectorised build.
func CommonVariants() []Variant {
	return []Variant{
		{Name: "portable -O2 scalar", Speedup: 0.72, ComputeShift: +0.15, CoreActivityFactor: 0.80},
		{Name: "production -O3", Speedup: 1.00, ComputeShift: 0, CoreActivityFactor: 1.00},
		{Name: "vendor libs + wide SIMD", Speedup: 1.18, ComputeShift: -0.10, CoreActivityFactor: 1.22},
	}
}

// Validate checks the variant parameters.
func (v Variant) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("apps: unnamed variant")
	}
	if v.Speedup <= 0 {
		return fmt.Errorf("apps: variant %s: non-positive speedup %v", v.Name, v.Speedup)
	}
	if v.CoreActivityFactor < 0 {
		return fmt.Errorf("apps: variant %s: negative activity factor", v.Name)
	}
	return nil
}

// Apply derives the variant build of app. The returned App is independent
// of the input. The compute fraction is clamped to [0.02, 0.98] so the
// derived kernel stays invertible.
func (v Variant) Apply(app *App) (*App, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	out := *app
	out.Name = fmt.Sprintf("%s [%s]", app.Name, v.Name)
	c := app.Kernel.ComputeFraction + v.ComputeShift
	if c < 0.02 {
		c = 0.02
	}
	if c > 0.98 {
		c = 0.98
	}
	out.Kernel.ComputeFraction = c
	out.ActCore = app.ActCore * v.CoreActivityFactor
	if app.RefRuntime > 0 {
		out.RefRuntime = time.Duration(float64(app.RefRuntime) / v.Speedup)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// VariantPoint is one row of a variant x frequency sweep.
type VariantPoint struct {
	Variant Variant
	Setting cpu.FreqSetting
	// PerfVsBase is throughput relative to the base build at the reference
	// setting (speedup / time multiplier).
	PerfVsBase float64
	// NodePower at this point.
	NodePower units.Power
	// EnergyVsBase is energy-to-solution relative to the base build at the
	// reference setting.
	EnergyVsBase float64
}

// SweepVariants evaluates every (variant, setting) combination for app in
// the given mode, relative to the plain app at the spec's default setting.
// This regenerates the analysis grid the paper's future-work section
// proposes.
func SweepVariants(spec *cpu.Spec, app *App, variants []Variant, settings []cpu.FreqSetting, m cpu.Mode) ([]VariantPoint, error) {
	baseTime := app.TimeMultiplier(spec, spec.DefaultSetting(), m)
	baseEnergy := app.NodeEnergy(spec, app.RefRuntime, spec.DefaultSetting(), m)
	if baseEnergy.Joules() <= 0 {
		return nil, fmt.Errorf("apps: base app has no reference energy (RefRuntime %v)", app.RefRuntime)
	}
	var out []VariantPoint
	for _, v := range variants {
		va, err := v.Apply(app)
		if err != nil {
			return nil, err
		}
		for _, fs := range settings {
			if err := spec.ValidateSetting(fs); err != nil {
				return nil, err
			}
			t := va.TimeMultiplier(spec, fs, m) * float64(va.RefRuntime) / float64(app.RefRuntime)
			e := va.NodeEnergy(spec, va.RefRuntime, fs, m)
			out = append(out, VariantPoint{
				Variant:      v,
				Setting:      fs,
				PerfVsBase:   baseTime / t,
				NodePower:    va.NodePower(spec, fs, m),
				EnergyVsBase: e.Joules() / baseEnergy.Joules(),
			})
		}
	}
	return out, nil
}

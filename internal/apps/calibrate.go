package apps

import (
	"fmt"

	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/units"
)

// This file inverts the paper's published ratios into model parameters.
// The algebra, with I = node idle power, Dc = node core-dynamic headroom,
// Du = node uncore headroom, d = DynFraction(f), g = mean die factor of
// the BIOS mode, ac/au = activity factors:
//
//	P(f, mode) = I + ac*Dc*g*d(f) + au*Du
//
// Frequency calibration (Table 4, both measurements in the same mode):
// given perf ratio r and energy ratio e at f vs boost, the power ratio is
// rho = e*r and
//
//	ac = (1-rho) * (I + au*Du) / (Dc*g * (rho - d(f)))
//
// Mode-switch calibration (Table 3, both measurements at boost): with
// rho = e*r comparing Performance Determinism to Power Determinism,
//
//	ac = (1-rho) * (I + au*Du) / (Dc * (rho - g))
//
// In both cases au is assigned from the application's research-area class
// (memory-system intensity is a property of the algorithm family), and the
// compute fraction c comes from inverting the roofline perf ratio.

// nodeConstants extracts the node-level power constants from a socket spec.
func nodeConstants(spec *cpu.Spec) (idle, coreDyn, uncoreDyn float64) {
	idle = node.IdlePower(spec).Watts()
	coreDyn = float64(node.SocketsPerNode) * spec.CoreDynMax.Watts()
	uncoreDyn = float64(node.SocketsPerNode) * spec.UncoreDynMax.Watts()
	return idle, coreDyn, uncoreDyn
}

// CalibrateFrequency solves (computeFraction, actCore) from a Table 4 style
// observation: perf ratio r and energy ratio e at frequency setting fs
// versus the boosted default, both measured in mode m, with the uncore
// activity au assigned a priori.
func CalibrateFrequency(spec *cpu.Spec, r, e, au float64, fs cpu.FreqSetting, m cpu.Mode) (c, ac float64, err error) {
	if r <= 0 || r > 1 || e <= 0 {
		return 0, 0, fmt.Errorf("apps: implausible ratios r=%v e=%v", r, e)
	}
	f := spec.EffectiveFrequency(fs)
	c, err = roofline.ComputeFractionFromPerfRatio(r, f, spec.BoostFreq)
	if err != nil {
		return 0, 0, err
	}
	I, Dc, Du := nodeConstants(spec)
	g := spec.MeanDieFactor(m)
	d := spec.DynFraction(f)
	rho := e * r
	if rho <= d+0.01 {
		return 0, 0, fmt.Errorf("apps: power ratio %.3f at or below dynamic floor %.3f (no feasible activity)", rho, d)
	}
	if rho >= 1 {
		return 0, 0, fmt.Errorf("apps: power ratio %.3f implies no power reduction", rho)
	}
	ac = (1 - rho) * (I + au*Du) / (Dc * g * (rho - d))
	return c, ac, nil
}

// CalibrateModeSwitch solves actCore from a Table 3 style observation: perf
// ratio r and energy ratio e of Performance Determinism versus Power
// Determinism at the boosted default setting, with uncore activity au
// assigned a priori.
func CalibrateModeSwitch(spec *cpu.Spec, r, e, au float64) (ac float64, err error) {
	if r <= 0 || r > 1.05 || e <= 0 {
		return 0, fmt.Errorf("apps: implausible ratios r=%v e=%v", r, e)
	}
	I, Dc, Du := nodeConstants(spec)
	g := spec.MeanDieFactor(cpu.PerformanceDeterminism)
	rho := e * r
	if rho <= g+0.01 {
		return 0, fmt.Errorf("apps: power ratio %.3f at or below die-factor floor %.3f", rho, g)
	}
	if rho >= 1 {
		return 0, fmt.Errorf("apps: power ratio %.3f implies no power reduction", rho)
	}
	ac = (1 - rho) * (I + au*Du) / (Dc * (rho - g))
	return ac, nil
}

// ExpectedBusyNodePower returns the fleet-expectation busy-node power for a
// weighted application mix at (setting, mode): sum_i w_i * P_i / sum_i w_i.
func ExpectedBusyNodePower(spec *cpu.Spec, mix []WeightedApp, fs cpu.FreqSetting, m cpu.Mode) units.Power {
	var num, den float64
	for _, wa := range mix {
		num += wa.Weight * wa.App.NodePower(spec, fs, m).Watts()
		den += wa.Weight
	}
	if den == 0 {
		return 0
	}
	return units.Watts(num / den)
}

// WeightedApp pairs an application with its share of fleet node-hours.
type WeightedApp struct {
	App    *App
	Weight float64
}

// ScaleMixActivity multiplies every app's activity factors by k, returning
// new App values (the inputs are not mutated). Used by the one-scalar fleet
// calibration against the measured baseline power.
func ScaleMixActivity(mix []WeightedApp, k float64) []WeightedApp {
	out := make([]WeightedApp, len(mix))
	for i, wa := range mix {
		app := *wa.App
		app.ActCore *= k
		app.ActUncore *= k
		out[i] = WeightedApp{App: &app, Weight: wa.Weight}
	}
	return out
}

// CalibrateMixToBusyPower finds the activity scalar k such that the mix's
// expected busy-node power at (setting, mode) equals target, by bisection,
// and returns the scaled mix. Errors if the target is below idle power or
// unreachable within k in [0.1, 10].
func CalibrateMixToBusyPower(spec *cpu.Spec, mix []WeightedApp, fs cpu.FreqSetting, m cpu.Mode, target units.Power) ([]WeightedApp, float64, error) {
	idle := node.IdlePower(spec).Watts()
	if target.Watts() <= idle {
		return nil, 0, fmt.Errorf("apps: target busy power %v at or below idle %v", target, units.Watts(idle))
	}
	f := func(k float64) float64 {
		return ExpectedBusyNodePower(spec, ScaleMixActivity(mix, k), fs, m).Watts() - target.Watts()
	}
	lo, hi := 0.1, 10.0
	if f(lo) > 0 || f(hi) < 0 {
		return nil, 0, fmt.Errorf("apps: target %v unreachable with activity scale in [%.1f, %.1f]", target, lo, hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	k := (lo + hi) / 2
	return ScaleMixActivity(mix, k), k, nil
}

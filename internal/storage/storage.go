// Package storage models the ARCHER2 file-system fleet: the 1 PB NetApp
// home storage, four ClusterStor L300 HDD work file systems (13.6 PB
// total) and the 1 PB ClusterStor E1000 NVMe system. The paper's Table 2
// treats storage as a 40 kW constant (~1% of system power), and the
// model reflects that: file-system power is load-insensitive at the
// facility scale, but per-system capacity and media metadata are kept so
// examples and future experiments can reason about the inventory.
package storage

import (
	"fmt"

	"github.com/greenhpc/archertwin/internal/units"
)

// Media is the storage technology of a file system.
type Media int

const (
	// HDD spinning-disk media (ClusterStor L300).
	HDD Media = iota
	// NVMe solid-state media (ClusterStor E1000).
	NVMe
	// Hybrid mixed controller/disk appliances (NetApp).
	Hybrid
)

// String implements fmt.Stringer.
func (m Media) String() string {
	switch m {
	case HDD:
		return "hdd"
	case NVMe:
		return "nvme"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Media(%d)", int(m))
	}
}

// FileSystem is one storage system.
type FileSystem struct {
	Name       string
	Media      Media
	CapacityPB float64
	Power      units.Power
}

// Fleet is a collection of file systems.
type Fleet struct {
	systems []FileSystem
}

// ARCHER2Fleet returns the paper's five file systems (Table 1) with the
// 40 kW total of Table 2 split 8 kW each.
func ARCHER2Fleet() *Fleet {
	per := units.Kilowatts(8)
	return &Fleet{systems: []FileSystem{
		{Name: "home (NetApp)", Media: Hybrid, CapacityPB: 1.0, Power: per},
		{Name: "work1 (ClusterStor L300)", Media: HDD, CapacityPB: 3.4, Power: per},
		{Name: "work2 (ClusterStor L300)", Media: HDD, CapacityPB: 3.4, Power: per},
		{Name: "work3 (ClusterStor L300)", Media: HDD, CapacityPB: 6.8, Power: per},
		{Name: "scratch (ClusterStor E1000)", Media: NVMe, CapacityPB: 1.0, Power: per},
	}}
}

// Systems returns the file systems in the fleet.
func (f *Fleet) Systems() []FileSystem { return f.systems }

// Count returns the number of file systems.
func (f *Fleet) Count() int { return len(f.systems) }

// TotalPower returns the fleet power draw.
func (f *Fleet) TotalPower() units.Power {
	var w float64
	for _, s := range f.systems {
		w += s.Power.Watts()
	}
	return units.Watts(w)
}

// TotalCapacityPB returns the fleet capacity in petabytes.
func (f *Fleet) TotalCapacityPB() float64 {
	var pb float64
	for _, s := range f.systems {
		pb += s.CapacityPB
	}
	return pb
}

// CapacityByMedia returns capacity in PB per media type.
func (f *Fleet) CapacityByMedia() map[Media]float64 {
	out := make(map[Media]float64)
	for _, s := range f.systems {
		out[s.Media] += s.CapacityPB
	}
	return out
}

package storage

import (
	"math"
	"testing"
)

func TestARCHER2FleetInventory(t *testing.T) {
	f := ARCHER2Fleet()
	// Paper Table 1: five file systems.
	if f.Count() != 5 {
		t.Fatalf("count = %d, want 5", f.Count())
	}
	// Paper Table 2: 40 kW total.
	if got := f.TotalPower().Kilowatts(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("total power = %v kW, want 40", got)
	}
	// Paper Table 1 capacities: 1 PB NetApp + 13.6 PB L300 + 1 PB E1000.
	if got := f.TotalCapacityPB(); math.Abs(got-15.6) > 1e-9 {
		t.Fatalf("total capacity = %v PB, want 15.6", got)
	}
}

func TestCapacityByMedia(t *testing.T) {
	f := ARCHER2Fleet()
	by := f.CapacityByMedia()
	if math.Abs(by[HDD]-13.6) > 1e-9 {
		t.Errorf("HDD capacity = %v, want 13.6", by[HDD])
	}
	if math.Abs(by[NVMe]-1.0) > 1e-9 {
		t.Errorf("NVMe capacity = %v, want 1", by[NVMe])
	}
	if math.Abs(by[Hybrid]-1.0) > 1e-9 {
		t.Errorf("Hybrid capacity = %v, want 1", by[Hybrid])
	}
}

func TestSystemsNamed(t *testing.T) {
	for _, s := range ARCHER2Fleet().Systems() {
		if s.Name == "" {
			t.Error("unnamed file system")
		}
		if s.Power.Watts() <= 0 {
			t.Errorf("%s: non-positive power", s.Name)
		}
		if s.CapacityPB <= 0 {
			t.Errorf("%s: non-positive capacity", s.Name)
		}
	}
}

func TestMediaString(t *testing.T) {
	for _, m := range []Media{HDD, NVMe, Hybrid, Media(9)} {
		if m.String() == "" {
			t.Fatalf("empty string for media %d", int(m))
		}
	}
}

// Acceptance test: the headline reproduction claim of this repository,
// asserted as a test. It runs the full-scale 13-month timeline (shared
// with the figure benchmarks via a cached run, ~7 s) and checks every
// published window mean within tolerance. Skipped under -short.
package archertwin_test

import (
	"math"
	"testing"
	"time"
)

// paperWindows holds the published cabinet power means in kW.
var paperWindows = map[string]float64{
	"figure1-baseline": 3220,
	"figure2-before":   3220,
	"figure2-after":    3010,
	"figure3-before":   3010,
	"figure3-after":    2530,
}

func TestPaperReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale timeline: skipped in -short mode")
	}
	res := fullTimeline(t)

	// Every window mean within 2% of the published value.
	for label, paper := range paperWindows {
		w, ok := res.WindowByLabel(label)
		if !ok {
			t.Fatalf("missing window %q", label)
		}
		sim := w.MeanPower.Kilowatts()
		if dev := math.Abs(sim-paper) / paper; dev > 0.02 {
			t.Errorf("%s: simulated %.0f kW vs paper %.0f kW (%.1f%% off)",
				label, sim, paper, dev*100)
		}
		// Paper: utilisation consistently over 90% in all periods.
		if w.MeanUtil < 0.90 {
			t.Errorf("%s: utilisation %.3f below the paper's >0.90", label, w.MeanUtil)
		}
	}

	// Step sizes within 2 percentage points of the paper's.
	bios := 1 - windowKW(t, res, "figure2-after")/windowKW(t, res, "figure2-before")
	if math.Abs(bios-0.065) > 0.02 {
		t.Errorf("BIOS step = %.3f, paper 0.065", bios)
	}
	freq := 1 - windowKW(t, res, "figure3-after")/windowKW(t, res, "figure3-before")
	if math.Abs(freq-0.159) > 0.02 {
		t.Errorf("frequency step = %.3f, paper 0.159", freq)
	}

	// Cumulative saving ~690 kW (+/-10%).
	saving := windowKW(t, res, "figure1-baseline") - windowKW(t, res, "figure3-after")
	if math.Abs(saving-690)/690 > 0.10 {
		t.Errorf("cumulative saving = %.0f kW, paper 690 kW", saving)
	}

	// The run is a real service year: O(100k) jobs, tens of GWh.
	if res.Sched.Completed < 100000 {
		t.Errorf("completed jobs = %d, implausibly few", res.Sched.Completed)
	}
	if e := res.TotalUsage.Energy.GigawattHours(); e < 15 || e > 40 {
		t.Errorf("job energy = %v GWh, outside plausible band", e)
	}
}

func TestPaperReproductionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale timeline: skipped in -short mode")
	}
	// The cached run must be byte-stable across invocations within a
	// process; cross-process determinism is covered by the seed tests in
	// internal/core. Here we assert the cached result is internally
	// consistent: window sample counts cover the windows at the metering
	// cadence.
	res := fullTimeline(t)
	for _, w := range res.Windows {
		expect := int(w.Window.To.Sub(w.Window.From) / res.Config.Meter.Interval)
		if w.SampleCount < expect*9/10 || w.SampleCount > expect {
			t.Errorf("%s: %d samples, expected ~%d", w.Window.Label, w.SampleCount, expect)
		}
	}
}

func TestStepChangesDetectableFromTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale timeline: skipped in -short mode")
	}
	// An analyst given only the twin's PMDB-style series should recover
	// the operational change dates blindly, as one could from the paper's
	// figures. Split the year at the known quiet point (Aug 1) and run
	// change-point detection on each half.
	res := fullTimeline(t)
	aug := timeDate(2022, 8, 1)

	firstHalf := res.Power.Slice(timeDate(2021, 12, 15), aug)
	step1, ok := firstHalf.DetectStep(200, 0.03)
	if !ok {
		t.Fatal("BIOS step not detected")
	}
	if step1.At.Before(timeDate(2022, 5, 1)) || step1.At.After(timeDate(2022, 5, 31)) {
		t.Errorf("BIOS step detected at %v, want May 2022", step1.At)
	}
	if step1.RelativeChg > -0.04 || step1.RelativeChg < -0.09 {
		t.Errorf("BIOS step size = %.3f, want ~-0.065", step1.RelativeChg)
	}

	secondHalf := res.Power.Slice(aug, timeDate(2022, 12, 31))
	step2, ok := secondHalf.DetectStep(200, 0.08)
	if !ok {
		t.Fatal("frequency step not detected")
	}
	if step2.At.Before(timeDate(2022, 11, 15)) || step2.At.After(timeDate(2022, 12, 10)) {
		t.Errorf("frequency step detected at %v, want late Nov 2022", step2.At)
	}
	if step2.RelativeChg > -0.12 || step2.RelativeChg < -0.22 {
		t.Errorf("frequency step size = %.3f, want ~-0.16", step2.RelativeChg)
	}
}

func timeDate(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

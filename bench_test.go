// Benchmark harness: one benchmark per paper table and figure, plus the
// ablations called out in DESIGN.md. Each reproduction benchmark reports
// the regenerated quantity as custom metrics (suffix _paper carries the
// published value for eyeball comparison):
//
//	go test -bench=. -benchmem
//
// The full-timeline benchmarks share one cached 13-month, 5860-node run;
// BenchmarkFullTimeline measures that simulation itself.
package archertwin_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/greenhpc/archertwin/internal/apps"
	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/cpu"
	"github.com/greenhpc/archertwin/internal/des"
	"github.com/greenhpc/archertwin/internal/emissions"
	"github.com/greenhpc/archertwin/internal/facility"
	"github.com/greenhpc/archertwin/internal/grid"
	"github.com/greenhpc/archertwin/internal/journal"
	"github.com/greenhpc/archertwin/internal/node"
	"github.com/greenhpc/archertwin/internal/policy"
	"github.com/greenhpc/archertwin/internal/rng"
	"github.com/greenhpc/archertwin/internal/roofline"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/sched"
	"github.com/greenhpc/archertwin/internal/timeseries"
	"github.com/greenhpc/archertwin/internal/units"
	"github.com/greenhpc/archertwin/internal/workload"
)

var epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

// fullRun caches the full-scale timeline results shared by the figure
// benchmarks.
var (
	fullOnce sync.Once
	fullRes  *core.Results
	fullErr  error
)

func fullTimeline(b testing.TB) *core.Results {
	b.Helper()
	fullOnce.Do(func() {
		sim, err := core.NewSimulator(core.DefaultConfig())
		if err != nil {
			fullErr = err
			return
		}
		fullRes, fullErr = sim.Run()
	})
	if fullErr != nil {
		b.Fatal(fullErr)
	}
	return fullRes
}

func windowKW(b testing.TB, res *core.Results, label string) float64 {
	b.Helper()
	w, ok := res.WindowByLabel(label)
	if !ok {
		b.Fatalf("missing window %q", label)
	}
	return w.MeanPower.Kilowatts()
}

// BenchmarkTable1Inventory regenerates the paper's hardware summary.
func BenchmarkTable1Inventory(b *testing.B) {
	var cores int
	for i := 0; i < b.N; i++ {
		f, err := facility.New(facility.ARCHER2(), rng.New(1), epoch)
		if err != nil {
			b.Fatal(err)
		}
		cores = f.CoreCount()
	}
	b.ReportMetric(float64(cores), "cores")
	b.ReportMetric(750080, "cores_paper")
}

// BenchmarkTable2ComponentPower regenerates the per-component breakdown.
func BenchmarkTable2ComponentPower(b *testing.B) {
	f, err := facility.New(facility.ARCHER2(), rng.New(1), epoch)
	if err != nil {
		b.Fatal(err)
	}
	var loaded units.Power
	var share float64
	for i := 0; i < b.N; i++ {
		rows := f.Breakdown()
		_, loaded = facility.BreakdownTotals(rows)
		share = rows[0].PercentLoaded
	}
	b.ReportMetric(loaded.Kilowatts(), "loaded_kW")
	b.ReportMetric(3500, "loaded_kW_paper")
	b.ReportMetric(share, "compute_pct")
	b.ReportMetric(86, "compute_pct_paper")
}

// BenchmarkTable3Determinism regenerates the BIOS-mode benchmark ratios.
func BenchmarkTable3Determinism(b *testing.B) {
	spec := cpu.EPYC7742()
	var meanEnergy float64
	for i := 0; i < b.N; i++ {
		cat, err := apps.NewCatalog(spec)
		if err != nil {
			b.Fatal(err)
		}
		def := spec.DefaultSetting()
		sum := 0.0
		for _, app := range cat.Table3 {
			sum += app.EnergyRatio(spec, def, cpu.PowerDeterminism, def, cpu.PerformanceDeterminism)
		}
		meanEnergy = sum / float64(len(cat.Table3))
	}
	b.ReportMetric(meanEnergy, "mean_energy_ratio")
	b.ReportMetric((0.94+0.90+0.93)/3, "mean_energy_ratio_paper")
}

// BenchmarkTable4Frequency regenerates the frequency-cap benchmark ratios.
func BenchmarkTable4Frequency(b *testing.B) {
	spec := cpu.EPYC7742()
	var meanPerf, meanEnergy float64
	for i := 0; i < b.N; i++ {
		cat, err := apps.NewCatalog(spec)
		if err != nil {
			b.Fatal(err)
		}
		def, capped := spec.DefaultSetting(), spec.CappedSetting()
		m := cpu.PerformanceDeterminism
		var ps, es float64
		for _, app := range cat.Table4 {
			ps += app.PerfRatio(spec, def, m, capped, m)
			es += app.EnergyRatio(spec, def, m, capped, m)
		}
		meanPerf = ps / float64(len(cat.Table4))
		meanEnergy = es / float64(len(cat.Table4))
	}
	b.ReportMetric(meanPerf, "mean_perf_ratio")
	b.ReportMetric((0.93+0.91+0.83+0.74+0.80+0.92+0.95)/7, "mean_perf_ratio_paper")
	b.ReportMetric(meanEnergy, "mean_energy_ratio")
	b.ReportMetric((0.88+0.93+0.92+0.92+0.80+0.82+0.88)/7, "mean_energy_ratio_paper")
}

// BenchmarkFullTimeline measures the complete 13-month, 5860-node run that
// backs Figures 1-3.
func BenchmarkFullTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim, err := core.NewSimulator(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Power.Mean(), "mean_kW")
	}
}

// BenchmarkResultsFootprint measures the memo byte-accounting pass and
// reports the retained footprint of the full-timeline results — the cost
// one full-scale entry charges against the scenario memo's byte budget
// (scenario.Runner.MemoBudgetBytes). The footprint metric doubles as the
// memory-compactness trajectory for the telemetry storage layer.
func BenchmarkResultsFootprint(b *testing.B) {
	res := fullTimeline(b)
	var fp int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp = res.MemoryFootprint()
	}
	b.ReportMetric(float64(fp), "footprint_bytes")
}

// BenchmarkFigure1Baseline regenerates the Dec 2021 - Apr 2022 baseline.
func BenchmarkFigure1Baseline(b *testing.B) {
	res := fullTimeline(b)
	var kw float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := res.WindowByLabel("figure1-baseline")
		kw = res.Power.MeanBetween(w.Window.From, w.Window.To)
	}
	b.ReportMetric(kw, "kW")
	b.ReportMetric(3220, "kW_paper")
}

// BenchmarkFigure2BIOS regenerates the Performance Determinism step.
func BenchmarkFigure2BIOS(b *testing.B) {
	res := fullTimeline(b)
	var before, after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before = windowKW(b, res, "figure2-before")
		after = windowKW(b, res, "figure2-after")
	}
	b.ReportMetric(before, "before_kW")
	b.ReportMetric(after, "after_kW")
	b.ReportMetric((before-after)/before*100, "drop_pct")
	b.ReportMetric(6.5, "drop_pct_paper")
}

// BenchmarkFigure3Frequency regenerates the 2.0 GHz default step.
func BenchmarkFigure3Frequency(b *testing.B) {
	res := fullTimeline(b)
	var before, after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before = windowKW(b, res, "figure3-before")
		after = windowKW(b, res, "figure3-after")
	}
	b.ReportMetric(before, "before_kW")
	b.ReportMetric(after, "after_kW")
	b.ReportMetric((before-after)/before*100, "drop_pct")
	b.ReportMetric(15.9, "drop_pct_paper")
}

// BenchmarkEmissionsRegimes regenerates the SS2 regime analysis.
func BenchmarkEmissionsRegimes(b *testing.B) {
	params := emissions.ARCHER2Defaults()
	var crossover float64
	for i := 0; i < b.N; i++ {
		pts := params.Sweep(units.Megawatts(3.5), []float64{5, 20, 40, 65, 100, 150, 200, 250})
		if pts[0].Regime != emissions.Scope3Dominated ||
			pts[len(pts)-1].Regime != emissions.Scope2Dominated {
			b.Fatal("regime endpoints wrong")
		}
		crossover = params.CrossoverIntensity(units.Megawatts(3.5)).GramsPerKWh()
	}
	b.ReportMetric(crossover, "crossover_g_per_kWh")
	b.ReportMetric(65, "crossover_paper_band_mid")
}

// BenchmarkConclusionsSummary regenerates the paper's SS5 headline claims:
// the ~690 kW cumulative saving, the ~50% idle:loaded node ratio and the
// load-insensitive switch power.
func BenchmarkConclusionsSummary(b *testing.B) {
	res := fullTimeline(b)
	spec := cpu.EPYC7742()
	var saving, idleRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saving = windowKW(b, res, "figure1-baseline") - windowKW(b, res, "figure3-after")
		idle := node.IdlePower(spec).Watts()
		loaded := node.ExpectedPower(spec, spec.DefaultSetting(),
			facility.TypicalLoadedActivity, cpu.PowerDeterminism).Watts()
		idleRatio = idle / loaded
	}
	b.ReportMetric(saving, "saving_kW")
	b.ReportMetric(690, "saving_kW_paper")
	b.ReportMetric(idleRatio*100, "idle_pct_of_loaded")
	b.ReportMetric(50, "idle_pct_paper")
}

// ablationRun executes a scaled 21-day run and returns the steady-window
// mean power and utilisation.
func ablationRun(b *testing.B, mutate func(*core.Config)) (kW, util float64) {
	b.Helper()
	cfg := core.ScaledConfig(150, epoch, 21)
	cfg.Windows = []core.Window{{Label: "w", From: epoch.AddDate(0, 0, 7), To: epoch.AddDate(0, 0, 21)}}
	if mutate != nil {
		mutate(&cfg)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	w, _ := res.WindowByLabel("w")
	return w.MeanPower.Kilowatts(), w.MeanUtil
}

// BenchmarkAblationOverrides quantifies the module-override policy: power
// given back (kW on 150 nodes) in exchange for protecting compute-bound
// applications from the frequency cap.
func BenchmarkAblationOverrides(b *testing.B) {
	capped := cpu.EPYC7742().CappedSetting()
	perfDet := cpu.PerformanceDeterminism
	timeline := policy.Timeline{Changes: []policy.Change{
		{At: epoch, Mode: &perfDet},
		{At: epoch.AddDate(0, 0, 1), Setting: &capped},
	}}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, _ = ablationRun(b, func(c *core.Config) {
			c.Timeline = timeline
			c.Policy = policy.Config{OverrideThreshold: 0.10, OverridesEnabled: true}
		})
		without, _ = ablationRun(b, func(c *core.Config) {
			c.Timeline = timeline
			c.Policy = policy.Config{OverridesEnabled: false}
		})
	}
	b.ReportMetric(with, "with_overrides_kW")
	b.ReportMetric(without, "without_overrides_kW")
	b.ReportMetric(with-without, "override_cost_kW")
}

// BenchmarkAblationNoBackfill quantifies what EASY backfill buys: the
// utilisation (and hence output) lost under plain FCFS.
func BenchmarkAblationNoBackfill(b *testing.B) {
	var easy, fcfs float64
	for i := 0; i < b.N; i++ {
		_, easy = ablationRun(b, nil)
		_, fcfs = ablationRun(b, func(c *core.Config) { c.Sched.BackfillDepth = 0 })
	}
	b.ReportMetric(easy*100, "easy_util_pct")
	b.ReportMetric(fcfs*100, "fcfs_util_pct")
}

// BenchmarkAblationUtilisation quantifies the paper's SS5 point that high
// utilisation is an energy-efficiency requirement: an undersubscribed
// facility still burns most of its power (idle nodes draw ~50%).
func BenchmarkAblationUtilisation(b *testing.B) {
	var satKW, satUtil, lowKW, lowUtil float64
	for i := 0; i < b.N; i++ {
		satKW, satUtil = ablationRun(b, nil)
		lowKW, lowUtil = ablationRun(b, func(c *core.Config) { c.OverSubscription = 0.5 })
	}
	perNodeHourSat := satKW / (150 * satUtil)
	perNodeHourLow := lowKW / (150 * lowUtil)
	b.ReportMetric(satUtil*100, "saturated_util_pct")
	b.ReportMetric(lowUtil*100, "undersub_util_pct")
	b.ReportMetric(perNodeHourLow/perNodeHourSat, "energy_per_nodeh_penalty")
}

// BenchmarkAblationVoltageCurve quantifies the sensitivity of the Table 4
// reproduction to the assumed 2.0 GHz operating voltage (DESIGN.md SS5).
func BenchmarkAblationVoltageCurve(b *testing.B) {
	base := cpu.EPYC7742()
	flat := cpu.EPYC7742()
	flat.PStates = append([]cpu.PState(nil), flat.PStates...)
	flat.PStates[1].Voltage = 1.0 // no voltage reduction at 2.0 GHz
	var deltaDyn float64
	for i := 0; i < b.N; i++ {
		f20 := units.Gigahertz(2.0)
		deltaDyn = flat.DynFraction(f20) - base.DynFraction(f20)
	}
	b.ReportMetric(base.DynFraction(units.Gigahertz(2.0)), "dyn_fraction_base")
	b.ReportMetric(deltaDyn, "dyn_fraction_delta_flatV")
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkNodePower(b *testing.B) {
	spec := cpu.EPYC7742()
	n := node.New(1, spec, rng.New(1), epoch)
	n.StartWork(cpu.Activity{Core: 0.7, Uncore: 0.6}, epoch)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += n.Power().Watts()
	}
	_ = acc
}

func BenchmarkFacilityCabinetPower(b *testing.B) {
	f, err := facility.New(facility.ARCHER2(), rng.New(1), epoch)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		f.Node(i).StartWork(facility.TypicalLoadedActivity, epoch)
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += f.CabinetPower().Watts()
	}
	_ = acc
}

func BenchmarkDESEvents(b *testing.B) {
	eng := des.NewEngine(epoch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(time.Duration(i%1000)*time.Second, func(time.Time) {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkRNGStream(b *testing.B) {
	r := rng.New(1)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.Float64()
	}
	_ = acc
}

func BenchmarkTimeseriesAppendAndMean(b *testing.B) {
	// Pre-sized like every producer in the hot path; it also keeps the
	// gated B/op deterministic (an unsized series reports N-dependent
	// slice-growth amortisation, which flaps around capacity doublings).
	s := timeseries.NewWithCapacity("x", "u", b.N)
	t := epoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MustAppend(t, float64(i))
		t = t.Add(time.Minute)
	}
	_ = s.Mean()
}

func BenchmarkSchedulerChurn(b *testing.B) {
	fcfg := facility.ARCHER2()
	fcfg.Nodes = 256
	fac, err := facility.New(fcfg, rng.New(1), epoch)
	if err != nil {
		b.Fatal(err)
	}
	eng := des.NewEngine(epoch)
	prov, err := policy.NewProvider(fcfg.CPU, policy.DefaultConfig(), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	s := sched.New(eng, fac, prov, sched.DefaultConfig())
	app := &apps.App{Name: "bench", ActCore: 0.6, ActUncore: 0.6}
	stream := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(workload.JobSpec{
			ID: i, Class: "bench", App: app,
			Nodes:      1 + stream.Intn(32),
			RefRuntime: time.Duration(1+stream.Intn(6)) * time.Hour,
		})
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkBackfillSaturated measures one steady-state scheduling pass
// over a saturated 256-node cluster with a deep queue nothing in which
// fits: the admission loop bails at the head, and the EASY backfill scan
// walks BackfillDepth candidates against the shadow window every pass.
// This is the scheduler's hot loop under the exact load (full machine,
// long queue) where a regression hurts most; the gate also pins
// allocs/op at zero — the per-app prediction cache and retained scratch
// buffers are what keep it there.
func BenchmarkBackfillSaturated(b *testing.B) {
	fcfg := facility.ARCHER2()
	fcfg.Nodes = 256
	fac, err := facility.New(fcfg, rng.New(1), epoch)
	if err != nil {
		b.Fatal(err)
	}
	eng := des.NewEngine(epoch)
	prov, err := policy.NewProvider(fcfg.CPU, policy.DefaultConfig(), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sched.DefaultConfig()
	cfg.BackfillDepth = 32
	cfg.MaxQueue = 512
	s := sched.New(eng, fac, prov, cfg)
	app := &apps.App{Name: "bench", ActCore: 0.6, ActUncore: 0.6}
	// 250 single-node blockers (6 nodes stay free), then a 32-node head
	// that must wait for ~26 releases, then candidates that fit the free
	// nodes but run far past the head's shadow time with no spare width —
	// so every pass walks the full depth doing real prediction work and
	// starts nothing.
	for i := 0; i < 250; i++ {
		s.Submit(workload.JobSpec{ID: i, Class: "bench", App: app,
			Nodes: 1, RefRuntime: 2 * time.Hour})
	}
	s.Submit(workload.JobSpec{ID: 250, Class: "bench", App: app,
		Nodes: 32, RefRuntime: 2 * time.Hour})
	for i := 251; i < 314; i++ {
		s.Submit(workload.JobSpec{ID: i, Class: "bench", App: app,
			Nodes: 3 + i%4, RefRuntime: 100 * time.Hour})
	}
	if s.BusyNodes() != 250 || s.QueueDepth() != 64 {
		b.Fatalf("rig not saturated: %d busy, %d queued", s.BusyNodes(), s.QueueDepth())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Kick()
	}
}

// --- checkpoint/fork sweep benchmarks ---

// benchForkSpec is a late-divergence sweep: four frequency branches that
// share their first eight days of a ten-day run and diverge only for the
// final two. Cold execution replays 4 x 10 simulated days; the fork path
// runs the 8-day prefix once and 4 x 2-day tails — the late-divergence
// shape the checkpoint/fork machinery exists for.
func benchForkSpec() scenario.Spec {
	return scenario.Spec{
		Name:             "bench-fork",
		Nodes:            64,
		Days:             10,
		Seed:             7,
		OverSubscription: 0.8,
		DivergeDay:       8,
		Axes: scenario.Axes{
			MidFrequency: []string{"none", "capped", "1.5GHz", "2.0GHz"},
		},
	}
}

// benchSweep runs the fork spec on a fresh single-worker Runner, so ns/op
// measures total simulation work independent of the host's core count,
// and nothing is served from a previous iteration's memo.
func benchSweep(b *testing.B, noFork bool) {
	b.Helper()
	spec := benchForkSpec()
	for i := 0; i < b.N; i++ {
		r := scenario.Runner{Workers: 1, NoFork: noFork}
		if _, err := r.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForkedSweep measures the late-divergence sweep with branches
// forked from the shared prefix checkpoint.
func BenchmarkForkedSweep(b *testing.B) { benchSweep(b, false) }

// BenchmarkColdSweep measures the same sweep with every branch replayed
// cold from day zero (Runner.NoFork) — the baseline the fork path is
// gated against.
func BenchmarkColdSweep(b *testing.B) { benchSweep(b, true) }

// TestForkSpeedupHeadroom guards the point of the fork path: with four
// branches diverging at day 8 of 10, cold replay simulates 40 day-
// equivalents against the fork path's ~16, so forked execution must stay
// comfortably ahead — at least 1.5x — or the checkpoint machinery has
// regressed into overhead.
func TestForkSpeedupHeadroom(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark pair: skipped in -short mode")
	}
	cold := testing.Benchmark(BenchmarkColdSweep)
	forked := testing.Benchmark(BenchmarkForkedSweep)
	ratio := float64(cold.NsPerOp()) / float64(forked.NsPerOp())
	t.Logf("cold %v/op, forked %v/op, speedup %.2fx",
		time.Duration(cold.NsPerOp()), time.Duration(forked.NsPerOp()), ratio)
	if ratio < 1.5 {
		t.Errorf("forked sweep speedup %.2fx, want >= 1.5x", ratio)
	}
}

// --- Roofline v2 benchmarks ---

// BenchmarkTableLookup measures one measured-table multiplier lookup —
// the operation on the scheduler's job-start and reclock paths when
// perf_model=table, so it must stay allocation-free (the benchjson gate
// pins allocs/op=0).
func BenchmarkTableLookup(b *testing.B) {
	tables, err := roofline.ARCHER2Tables()
	if err != nil {
		b.Fatal(err)
	}
	tbl := tables["climate-ocean"]
	if tbl == nil {
		b.Fatal("no climate-ocean table")
	}
	ref := units.Gigahertz(2.8)
	freqs := []units.Frequency{
		units.Gigahertz(1.5), units.Gigahertz(1.8), units.Gigahertz(2.0),
		units.Gigahertz(2.25), units.Gigahertz(2.6),
	}
	var sum float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum += tbl.Multiplier(freqs[i%len(freqs)], ref, roofline.PerformanceDeterminism)
	}
	if sum <= 0 {
		b.Fatal("degenerate multiplier sum")
	}
}

// BenchmarkHeterogeneousSweep measures a sweep over the Roofline-v2
// axes: a hybrid CPU+AI fleet with table-based perf models against the
// homogeneous kernel baseline. It gates the per-partition scheduler
// paths (ranged free-node accounting, partition-pinned operating
// points) that a homogeneous run never exercises.
func BenchmarkHeterogeneousSweep(b *testing.B) {
	spec := scenario.Spec{
		Name:             "bench-hetero",
		Nodes:            64,
		Days:             6,
		Seed:             7,
		OverSubscription: 0.8,
		Mode:             scenario.ModeList,
		Axes: scenario.Axes{
			Fleet:     []string{"cpu", "hybrid"},
			PerfModel: []string{"kernel", "table"},
		},
	}
	for i := 0; i < b.N; i++ {
		r := scenario.Runner{Workers: 1}
		if _, err := r.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- future-work feature benchmarks (paper SS5) ---

// BenchmarkFutureWorkVariants regenerates the compiler/library-choice
// analysis grid: build variants x frequency settings for a CASTEP-like
// code, reporting the energy-to-solution spread the choice of build opens.
func BenchmarkFutureWorkVariants(b *testing.B) {
	spec := cpu.EPYC7742()
	cat, err := apps.NewCatalog(spec)
	if err != nil {
		b.Fatal(err)
	}
	app := cat.ByName("CASTEP Al Slab")
	settings := []cpu.FreqSetting{
		{Base: units.Gigahertz(1.5)}, spec.CappedSetting(), spec.DefaultSetting(),
	}
	var minE, maxE float64
	for i := 0; i < b.N; i++ {
		pts, err := apps.SweepVariants(spec, app, apps.CommonVariants(), settings, cpu.PerformanceDeterminism)
		if err != nil {
			b.Fatal(err)
		}
		minE, maxE = pts[0].EnergyVsBase, pts[0].EnergyVsBase
		for _, p := range pts {
			if p.EnergyVsBase < minE {
				minE = p.EnergyVsBase
			}
			if p.EnergyVsBase > maxE {
				maxE = p.EnergyVsBase
			}
		}
	}
	b.ReportMetric(minE, "best_energy_vs_base")
	b.ReportMetric(maxE, "worst_energy_vs_base")
}

// BenchmarkFutureWorkSurrogate regenerates the AI-replacement break-even
// analysis for a climate-model-like workload.
func BenchmarkFutureWorkSurrogate(b *testing.B) {
	spec := cpu.EPYC7742()
	model := &apps.App{
		Name:    "ocean-model",
		Kernel:  rooflineKernel(0.25),
		ActCore: 0.55, ActUncore: 1.0,
		RefNodes: 64, RefRuntime: 16 * time.Hour,
	}
	sur := apps.Surrogate{
		Name:            "emulator",
		TrainingEnergy:  apps.TrainingEnergyFromRuns(spec, model, spec.DefaultSetting(), cpu.PerformanceDeterminism, 200),
		SpeedupFactor:   50,
		NodeFactor:      0.25,
		CoveredFraction: 0.80,
	}
	var be int
	for i := 0; i < b.N; i++ {
		var err error
		be, err = apps.BreakEvenRuns(spec, model, sur, spec.DefaultSetting(), cpu.PerformanceDeterminism)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(be), "breakeven_runs")
}

// BenchmarkLifetimeReplacement regenerates the replace-vs-keep analysis on
// dirty and clean grid trajectories.
func BenchmarkLifetimeReplacement(b *testing.B) {
	params := emissions.ARCHER2Defaults()
	opt := emissions.ReplacementOption{
		Name: "successor", Embodied: params.Embodied,
		Lifetime: params.Lifetime, PowerRatio: 0.70,
	}
	dirty := emissions.Trajectory{Start: units.GramsPerKWh(300), AnnualDecline: 0.02, Floor: units.GramsPerKWh(50)}
	clean := emissions.Trajectory{Start: units.GramsPerKWh(25), AnnualDecline: 0.05, Floor: units.GramsPerKWh(10)}
	var advDirty, advClean float64
	for i := 0; i < b.N; i++ {
		rd, err := params.CompareReplacement(units.Megawatts(3.5), 6, dirty, opt)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := params.CompareReplacement(units.Megawatts(3.5), 6, clean, opt)
		if err != nil {
			b.Fatal(err)
		}
		advDirty, advClean = rd.Advantage.Kilotonnes(), rc.Advantage.Kilotonnes()
	}
	b.ReportMetric(advDirty, "replace_adv_dirty_kt")
	b.ReportMetric(advClean, "replace_adv_clean_kt")
}

// BenchmarkGridYear measures synthetic grid generation (intensity + price
// + stress events for one year at hourly resolution).
func BenchmarkGridYear(b *testing.B) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	var mean float64
	for i := 0; i < b.N; i++ {
		y, err := grid.GenerateYear(grid.GB2022(), grid.GB2022Prices(), start, 0.3, rng.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		mean = y.Intensity.Mean()
	}
	b.ReportMetric(mean, "mean_gCO2_per_kWh")
}

// rooflineKernel is a tiny helper keeping the bench file free of a direct
// roofline import alias clash.
func rooflineKernel(c float64) roofline.Kernel { return roofline.Kernel{ComputeFraction: c} }

// BenchmarkJournalAppend measures the durable journal's amortized
// append+commit cost with real fsyncs: records accumulate in the group-
// commit buffer and every 256th Commit pays one fsync for the whole
// batch — the write pattern a busy durable twinserver settles into. The
// target is amortized sub-10µs per record.
func BenchmarkJournalAppend(b *testing.B) {
	l, err := journal.Open(b.TempDir(), journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	rec := &journal.ScenarioDone{
		Sweep: "sweep-1",
		Result: scenario.Result{
			Scenario:  scenario.Scenario{Name: "freq=capped/grid=200"},
			MeanPower: 1893.4, MeanUtil: 0.87, Energy: 123.4,
			SimDigest: "0123456789abcdef0123456789abcdef",
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Index = i
		rec.Result.Scenario.Index = i
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
		if (i+1)%256 == 0 {
			if err := l.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := l.Commit(ctx); err != nil {
		b.Fatal(err)
	}
}

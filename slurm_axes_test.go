// Worker-invariance and differentiation proofs for the Slurm-realism
// sweep axes (priority_mix x backfill_policy x preemption). The golden
// digests in golden_test.go pin the default axes; these tests pin the
// new ones: a sweep over every new axis must produce bit-identical
// measured outcomes at every worker count, and each axis value must
// actually change simulation output (a policy knob that alters nothing
// is miswired).
package archertwin_test

import (
	"context"
	"testing"

	"github.com/greenhpc/archertwin/internal/core"
	"github.com/greenhpc/archertwin/internal/scenario"
	"github.com/greenhpc/archertwin/internal/sched"
)

// slurmAxesSpec is oversubscribed so the queue stays deep enough for
// backfill, aging and preemption to make different decisions.
func slurmAxesSpec() scenario.Spec {
	return scenario.Spec{
		Name:               "slurm-axes",
		Nodes:              48,
		Days:               6,
		Seed:               42,
		OverSubscription:   1.2,
		PriorityAgingHours: 12,
		Axes: scenario.Axes{
			PriorityMix:    []string{"none", "tiered"},
			BackfillPolicy: []string{"easy", "conservative"},
			Preemption:     []string{"off", "requeue"},
		},
	}
}

func TestSlurmAxesSweepWorkerInvariant(t *testing.T) {
	var first *scenario.SweepResults
	firstDigest := ""
	for _, workers := range []int{1, 4, 8} {
		r := scenario.Runner{Workers: workers}
		res, err := r.Run(context.Background(), slurmAxesSpec())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Results) != 8 {
			t.Fatalf("workers=%d: %d scenarios, want 8", workers, len(res.Results))
		}
		d := sweepDigest(res)
		if first == nil {
			first, firstDigest = res, d
			continue
		}
		if d != firstDigest {
			t.Errorf("workers=%d: sweep digest %s != workers=1 digest %s", workers, d, firstDigest)
		}
		for i := range res.Results {
			if res.Results[i].SimDigest != first.Results[i].SimDigest {
				t.Errorf("workers=%d: scenario %s: SimDigest %s != workers=1 %s",
					workers, res.Results[i].Scenario.Name,
					res.Results[i].SimDigest, first.Results[i].SimDigest)
			}
		}
	}

	// Differentiation: each axis must change simulation output relative
	// to the all-defaults scenario. Scenario order is the cross product
	// with preemption fastest: index = prio*4 + bf*2 + preempt.
	byName := map[string]string{}
	for _, r := range first.Results {
		byName[r.Scenario.Name] = r.SimDigest
	}
	base, ok := byName["prio=none bf=easy preempt=off"]
	if !ok {
		t.Fatalf("baseline scenario missing; got %v", keys(byName))
	}
	for _, name := range []string{
		"prio=tiered bf=easy preempt=off", // priority classes reorder the queue
		"prio=none bf=conservative preempt=off",
		"prio=tiered bf=easy preempt=requeue",
	} {
		d, ok := byName[name]
		if !ok {
			t.Errorf("scenario %q missing; got %v", name, keys(byName))
			continue
		}
		if d == base {
			t.Errorf("scenario %q is bit-identical to the baseline; its axis changes nothing", name)
		}
	}
	// Note the preempt=requeue / prio=none scenario is NOT compared to
	// the baseline: non-default axis values deliberately derive a
	// different simulation seed (cache-identity separation), so the two
	// scenarios run different workloads. The knob-level no-op property —
	// preemption without priority classes changes nothing — is pinned at
	// the core layer by TestPreemptionWithoutPrioritiesIsNoOp.
}

// TestPreemptionWithoutPrioritiesIsNoOp runs the identical configuration
// with preemption off and on: with no priority classes every job has
// priority 0, no running job can trail the queue head by the minimum
// gap, and the preemption scan must never evict anyone — bit-identical
// output.
func TestPreemptionWithoutPrioritiesIsNoOp(t *testing.T) {
	run := func(mode sched.PreemptionMode) string {
		cfg := core.ScaledConfig(48, epoch, 6)
		cfg.Sched.Preemption = mode
		res, err := core.RunConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest()
	}
	off, requeue := run(sched.PreemptOff), run(sched.PreemptRequeue)
	if off != requeue {
		t.Errorf("preemption with uniform priorities changed output: %s != %s", requeue, off)
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

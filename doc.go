// Package archertwin is a digital twin of an ARCHER2-class HPC facility
// for energy and emissions studies, reproducing Jackson, Simpson and
// Turner, "Emissions and energy efficiency on large-scale high performance
// computing facilities: ARCHER2 UK national supercomputing service case
// study" (SC 2023).
//
// The root package carries the repository-level benchmark harness
// (bench_test.go): one benchmark per paper table and figure, each
// reporting the reproduced quantity as a custom benchmark metric next to
// the paper's published value. The library itself lives under internal/
// and is exercised through the cmd/ tools and examples/ programs.
package archertwin
